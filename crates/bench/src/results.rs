//! Machine-readable benchmark results.
//!
//! Every figure/table binary can dump what it measured as one JSON file
//! per run — `results/BENCH_<bin>.json` — so downstream tooling (plots,
//! regression checks, CI) reads numbers instead of scraping the printed
//! tables. Each file is an envelope
//! `{schema_version, git, records: [...]}` — the version and the
//! `git describe` of the producing tree let perf-trajectory tooling
//! trust (or discard) old records — and a record is
//! `{subject, config, phase_us: {...}}`, phase times in microseconds to
//! match the Chrome-trace unit.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use yalla_obs::chrome::escape_json;
use yalla_sim::phases::PhaseBreakdown;

use crate::harness::SubjectEvaluation;

/// One measured run: a subject under one build configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Subject name (Table 2 "File").
    pub subject: String,
    /// Configuration label (`default`, `pch`, `yalla`, `wrappers`, `tool`).
    pub config: String,
    /// Named phase durations in microseconds.
    pub phase_us: Vec<(String, f64)>,
}

impl RunRecord {
    /// A record from a simulated compile's phase breakdown.
    pub fn from_phases(subject: &str, config: &str, phases: &PhaseBreakdown) -> Self {
        RunRecord {
            subject: subject.to_string(),
            config: config.to_string(),
            phase_us: vec![
                ("preprocess".to_string(), phases.preprocess_ms * 1000.0),
                ("parse_sema".to_string(), phases.parse_sema_ms * 1000.0),
                ("instantiate".to_string(), phases.instantiate_ms * 1000.0),
                ("optimize".to_string(), phases.optimize_ms * 1000.0),
                ("codegen".to_string(), phases.codegen_ms * 1000.0),
            ],
        }
    }

    /// Total of all phases (µs).
    pub fn total_us(&self) -> f64 {
        self.phase_us.iter().map(|(_, v)| v).sum()
    }
}

/// The standard record set for one evaluated subject: the three compile
/// configurations, the wrappers compile, and the tool run itself — the
/// tool record's phases are the *real* span-derived engine timings
/// ([`yalla_core::Timings`]), not modeled values.
pub fn records_for(eval: &SubjectEvaluation) -> Vec<RunRecord> {
    let t = &eval.substitution.timings;
    vec![
        RunRecord::from_phases(eval.name, "default", &eval.default.phases),
        RunRecord::from_phases(eval.name, "pch", &eval.pch.phases),
        RunRecord::from_phases(eval.name, "yalla", &eval.yalla.phases),
        RunRecord::from_phases(eval.name, "wrappers", &eval.wrappers.phases),
        RunRecord {
            subject: eval.name.to_string(),
            config: "tool".to_string(),
            phase_us: vec![
                ("parse".to_string(), t.parse.as_secs_f64() * 1e6),
                ("analyze".to_string(), t.analyze.as_secs_f64() * 1e6),
                ("plan".to_string(), t.plan.as_secs_f64() * 1e6),
                ("generate".to_string(), t.generate.as_secs_f64() * 1e6),
                ("verify".to_string(), t.verify.as_secs_f64() * 1e6),
            ],
        },
    ]
}

/// Version of the `BENCH_*.json` envelope; bump on breaking layout
/// changes. Version 2 introduced the envelope itself (version 1 files
/// were a bare record array).
pub const SCHEMA_VERSION: u64 = 2;

/// `git describe --always --dirty` of the producing tree, or `unknown`
/// when git (or the repository) is unavailable — record files must still
/// be writable from an exported tarball.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Serializes records as the versioned envelope (stable key order,
/// valid RFC 8259), stamped with [`SCHEMA_VERSION`] and [`git_describe`].
pub fn to_json(records: &[RunRecord]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema_version\": {SCHEMA_VERSION}, \"git\": \"{}\", \"records\": ",
        escape_json(&git_describe())
    );
    out.push_str(&records_json(records));
    out.push_str("}\n");
    out
}

/// The bare record array (the envelope's `records` field).
fn records_json(records: &[RunRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "  {{\"subject\": \"{}\", \"config\": \"{}\", \"phase_us\": {{",
            escape_json(&r.subject),
            escape_json(&r.config)
        );
        for (j, (name, us)) in r.phase_us.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let v = if us.is_finite() { *us } else { 0.0 };
            let _ = write!(out, "\"{}\": {v:.1}", escape_json(name));
        }
        out.push_str("}}");
    }
    out.push_str("\n]");
    out
}

/// Writes `records` to `<dir>/BENCH_<bin>.json` and returns the path.
///
/// # Errors
///
/// Propagates directory-creation and write failures.
pub fn write_records(dir: &Path, bin: &str, records: &[RunRecord]) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{bin}.json"));
    std::fs::write(&path, to_json(records))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yalla_obs::json::{self, JsonValue};

    #[test]
    fn records_serialize_to_valid_json() {
        let records = vec![
            RunRecord::from_phases(
                "02",
                "default",
                &PhaseBreakdown {
                    preprocess_ms: 1.0,
                    parse_sema_ms: 2.0,
                    ..PhaseBreakdown::default()
                },
            ),
            RunRecord {
                subject: "we\"ird".to_string(),
                config: "tool".to_string(),
                phase_us: vec![("parse".to_string(), 12.5)],
            },
        ];
        let text = to_json(&records);
        let parsed = json::parse(&text).expect("valid JSON");
        assert_eq!(
            parsed.get("schema_version").and_then(JsonValue::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
        let git = parsed.get("git").and_then(JsonValue::as_str).unwrap();
        assert!(!git.is_empty());
        let arr = parsed.get("records").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(
            arr[0].get("config").and_then(JsonValue::as_str),
            Some("default")
        );
        assert_eq!(
            arr[0]
                .get("phase_us")
                .and_then(|p| p.get("preprocess"))
                .and_then(JsonValue::as_f64),
            Some(1000.0)
        );
        assert_eq!(
            arr[1].get("subject").and_then(JsonValue::as_str),
            Some("we\"ird")
        );
    }

    #[test]
    fn totals_sum_phases() {
        let r = RunRecord {
            subject: "s".into(),
            config: "c".into(),
            phase_us: vec![("a".into(), 1.5), ("b".into(), 2.5)],
        };
        assert_eq!(r.total_us(), 4.0);
    }

    #[test]
    fn write_records_creates_bench_file() {
        let dir = std::env::temp_dir().join("yalla-results-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_records(&dir, "unit", &[]).unwrap();
        assert!(path.ends_with("BENCH_unit.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = json::parse(&text).expect("valid JSON");
        assert!(
            parsed
                .get("records")
                .and_then(JsonValue::as_array)
                .is_some_and(|records| records.is_empty()),
            "{text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn git_describe_never_panics_and_is_nonempty() {
        let describe = git_describe();
        assert!(!describe.is_empty());
        assert!(!describe.contains('\n'));
    }
}
