//! Shared helpers for the benchmark harness (see the `table2`, `table3`,
//! and `fig7`–`fig10` binaries, each of which regenerates one table or
//! figure of the paper).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub mod results;
pub mod slo;
