//! Property tests for the binary module format (DESIGN.md §13).
//!
//! Three properties, over arbitrary generated modules:
//!
//! 1. **Roundtrip fidelity** — everything written through
//!    [`ModuleBuilder`] reads back identically through the zero-copy
//!    [`ModuleReader`] views.
//! 2. **Byte stability** — re-encoding the decoded content produces the
//!    exact same bytes (the format has one canonical serialization;
//!    varints are minimal-length, string tables are first-seen order).
//! 3. **Corruption safety** — every truncation prefix and every
//!    single-byte flip of a valid module either fails `parse` with a
//!    typed [`CodecError`] or yields a module whose every accessor
//!    returns without panicking.

use proptest::prelude::*;
use yalla_store::module::{ModuleBuilder, ModuleReader, PartitionBuilder, StrRef};

const PART_FIXED: u8 = 1;
const PART_VAR: u8 = 2;
const FIXED_ROW_SIZE: usize = 12; // strref u32 + value u64

/// The generated content of one module, in a normal form that is
/// independent of how the bytes were produced.
#[derive(Debug, Clone, PartialEq)]
struct Content {
    kind: u8,
    /// `(name, value)` fixed rows.
    rows: Vec<(String, u64)>,
    /// Varint-stream payload.
    vars: Vec<u64>,
}

fn encode(c: &Content) -> Vec<u8> {
    let mut m = ModuleBuilder::new(c.kind);
    if !c.rows.is_empty() {
        let mut fixed = PartitionBuilder::fixed(PART_FIXED, FIXED_ROW_SIZE);
        for (name, value) in &c.rows {
            let s = m.intern(name);
            let row = fixed.row();
            row.put_u32(s.0);
            row.put_u64(*value);
        }
        m.push(fixed);
    }
    let mut var = PartitionBuilder::var(PART_VAR);
    let w = var.row();
    w.put_varint(c.vars.len() as u64);
    for v in &c.vars {
        w.put_varint(*v);
    }
    m.push(var);
    m.finish()
}

fn decode(bytes: &[u8]) -> Content {
    let m = ModuleReader::parse(bytes).expect("valid module");
    let mut rows = Vec::new();
    if let Some(p) = m.part(PART_FIXED) {
        for row in p.iter() {
            let name = m.get(row.str_at(0).unwrap()).unwrap().to_string();
            rows.push((name, row.u64_at(4).unwrap()));
        }
    }
    let mut vars = Vec::new();
    let var = m.part(PART_VAR).expect("var partition");
    let mut r = var.reader();
    let n = r.get_varint().expect("count");
    for _ in 0..n {
        vars.push(r.get_varint().expect("value"));
    }
    Content {
        kind: m.kind(),
        rows,
        vars,
    }
}

/// Touch every accessor of a parsed module; nothing here may panic,
/// whatever bytes produced `m`.
fn exhaust(m: &ModuleReader<'_>) {
    for (_tag, part) in m.parts() {
        for i in 0..part.rows() {
            if let Ok(row) = part.row(i) {
                let _ = row.u8_at(0);
                let _ = row.u32_at(0);
                let _ = row.u64_at(4);
                if let Ok(s) = row.str_at(0) {
                    let _ = m.get(s);
                }
            }
        }
        let mut r = part.reader();
        while r.get_varint().is_ok() {}
    }
    for i in 0..m.str_count() {
        let _ = m.get(StrRef(i as u32));
        let _ = m.get(StrRef(u32::MAX)); // out of range: typed error
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_and_byte_stability(
        kind in 0u8..=255u8,
        rows in prop::collection::vec(("[a-z/._\\-]{0,12}", 0u64..u64::MAX), 0..16),
        vars in prop::collection::vec(0u64..u64::MAX, 0..16),
    ) {
        let content = Content { kind, rows, vars };
        let bytes = encode(&content);
        let back = decode(&bytes);
        prop_assert_eq!(&back, &content, "roundtrip fidelity");
        // One canonical serialization: encode(decode(encode(x))) is
        // byte-identical to encode(x).
        prop_assert_eq!(encode(&back), bytes, "byte stability");
    }

    #[test]
    fn truncation_and_bit_flips_never_panic(
        kind in 0u8..=255u8,
        rows in prop::collection::vec(("[a-z\u{00e9}]{0,8}", 0u64..u64::MAX), 0..8),
        vars in prop::collection::vec(0u64..u64::MAX, 0..8),
        mask in 1u8..=255u8,
    ) {
        let bytes = encode(&Content { kind, rows, vars });
        for cut in 0..bytes.len() {
            if let Ok(m) = ModuleReader::parse(&bytes[..cut]) {
                exhaust(&m);
            }
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= mask;
            if let Ok(m) = ModuleReader::parse(&bad) {
                exhaust(&m);
            }
        }
    }
}
