//! yalla-store: a persistent, content-addressed on-disk artifact cache.
//!
//! The second cache tier behind the in-memory `ParseCache` and `Session`
//! stage slots (memory → disk → recompute), in the style of ccache's
//! direct mode and sccache's local storage: entries are addressed by the
//! FNV-64 stage fingerprints the pipeline already computes, so a fresh
//! process — or a daemon restarted after `kill -9` — re-reaches steady
//! state from disk instead of recomputing (see DESIGN.md §11).
//!
//! Guarantees, and how they are held:
//!
//! - **Crash safety.** Entries are written to a tmp file and `rename`d
//!   into place, so a reader never observes a half-written entry under
//!   its final name. A crash can at worst leak a tmp file (swept by the
//!   next eviction pass) or strand an entry missing from the index
//!   (re-adopted by directory scan at open).
//! - **Corruption degrades to a miss, never an error.** Every entry is a
//!   versioned record with an FNV-64 checksum footer ([`record`]); any
//!   decode failure deletes the entry, bumps `store.corruptions` (and
//!   `store.misses`), and reports a miss. The [`sabotage`] hook injects
//!   torn/flipped/partial writes to prove this in `tests/store_faults.rs`.
//! - **Shared directories are safe.** Writers serialize on a lock file
//!   ([`lock`]); readers are lock-free because entries are immutable once
//!   renamed in. Parallel daemons and CLI runs can point at one dir.
//! - **Bounded size.** An on-disk LRU index ([`index`]) tracks entry
//!   sizes and last-use ticks; puts evict least-recently-used entries
//!   until the total fits the capacity. Recency from pure reads is
//!   process-local until the next put persists it — cross-process LRU is
//!   approximate, which only costs eviction-order quality.
//!
//! Every operation is best-effort: I/O failures make the store quietly
//! smaller or colder, never take the pipeline down.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

pub mod codec;
pub mod index;
pub mod lock;
pub mod module;
pub mod record;
pub mod sabotage;

use index::Index;
use lock::LockGuard;
pub use record::FORMAT_VERSION;
pub use sabotage::Sabotage;

/// Namespace for parse dep-manifests (keyed by `(main path, defines)`
/// fingerprint; payload lists the include closure and its hash).
pub const NS_PARSE: &str = "parse";
/// Namespace for whole-run artifact bundles (keyed by the run
/// fingerprint over closure + options + sources).
pub const NS_RUN: &str = "run";
/// Namespace for `yalla serve` project records (keyed by root content
/// hash; payload re-seeds a warm session after restart).
pub const NS_SERVE: &str = "serve";

/// Default capacity: plenty for every corpus subject many times over,
/// small enough that a forgotten cache dir can't eat a disk.
pub const DEFAULT_CAPACITY: u64 = 256 * 1024 * 1024;

/// Environment variable naming the shared cache directory.
pub const CACHE_DIR_ENV: &str = "YALLA_CACHE_DIR";

/// FNV-1a 64-bit over a byte slice — the same function the pipeline's
/// fingerprints use, re-implemented here so the store depends only on
/// yalla-obs.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Point-in-time view of the store's own counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that returned a valid entry.
    pub hits: u64,
    /// Lookups that found nothing usable (includes corrupt entries).
    pub misses: u64,
    /// Entries evicted by the size bound.
    pub evictions: u64,
    /// Entries dropped because they failed to decode.
    pub corrupt: u64,
    /// Total entry bytes currently indexed.
    pub bytes: u64,
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicI64,
    misses: AtomicI64,
    evictions: AtomicI64,
    corrupt: AtomicI64,
}

/// A validated store hit served as a view: the guard owns the record's
/// file bytes and derefs to the payload slice inside them — the payload
/// is never copied out, and module readers borrow straight from it.
#[derive(Debug)]
pub struct PayloadView {
    bytes: Vec<u8>,
    start: usize,
    end: usize,
}

impl std::ops::Deref for PayloadView {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.bytes[self.start..self.end]
    }
}

/// A handle to one cache directory.
///
/// Handles are cheap to open and safe to use from many threads; distinct
/// handles (including in other processes) may share a directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    capacity: u64,
    state: Mutex<Index>,
    sabotage: Mutex<Sabotage>,
    counters: Counters,
}

impl Store {
    /// Opens (creating if needed) `dir` with the default capacity.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Store> {
        Store::open_with_capacity(dir, DEFAULT_CAPACITY)
    }

    /// Opens (creating if needed) `dir` with an explicit byte capacity.
    pub fn open_with_capacity(dir: impl Into<PathBuf>, capacity: u64) -> io::Result<Store> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut idx = Index::load(&dir);
        idx.adopt_orphans(&dir);
        let store = Store {
            dir,
            capacity,
            state: Mutex::new(idx),
            sabotage: Mutex::new(Sabotage::from_env()),
            counters: Counters::default(),
        };
        store.publish_bytes();
        Ok(store)
    }

    /// Opens the store named by `YALLA_CACHE_DIR`, if set and usable.
    pub fn from_env() -> Option<Store> {
        let dir = std::env::var(CACHE_DIR_ENV).ok()?;
        if dir.is_empty() {
            return None;
        }
        Store::open(dir).ok()
    }

    /// The process-wide store from `YALLA_CACHE_DIR` (resolved once), or
    /// `None` when no cache directory is configured.
    pub fn global() -> Option<Arc<Store>> {
        static GLOBAL: OnceLock<Option<Arc<Store>>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| Store::from_env().map(Arc::new))
            .clone()
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Overrides the write-time fault-injection mode (tests).
    pub fn set_sabotage(&self, mode: Sabotage) {
        *self.sabotage.lock().expect("sabotage lock") = mode;
    }

    fn entry_name(namespace: &str, key: u64) -> String {
        format!("{namespace}.{key:016x}.rec")
    }

    /// Looks up `(namespace, key)`. A torn or corrupt entry is deleted
    /// and reported as a miss; only a valid record is a hit.
    ///
    /// Every lookup is timed into the `latency.store.hit`/`.miss`
    /// histograms and, when an event log is installed, emits a `store`
    /// line joined to the ambient request id — worker threads running
    /// DAG nodes inherit the daemon request's id, so these lines trace
    /// back to the request that caused the lookup.
    pub fn get(&self, namespace: &str, key: u64) -> Option<Vec<u8>> {
        let span = yalla_obs::span("store", "get");
        let result = self.get_uninstrumented(namespace, key).map(|v| v.to_vec());
        let dur = span.finish();
        let hist = if result.is_some() {
            yalla_obs::metrics::names::LATENCY_STORE_HIT
        } else {
            yalla_obs::metrics::names::LATENCY_STORE_MISS
        };
        yalla_obs::observe(hist, dur);
        if yalla_obs::log::is_active() {
            yalla_obs::log::emit(
                "store",
                &[
                    ("ns", namespace.into()),
                    ("hit", yalla_obs::ArgValue::Int(i64::from(result.is_some()))),
                    ("dur_us", yalla_obs::ArgValue::Int(dur.as_micros() as i64)),
                ],
            );
        }
        result
    }

    /// Looks up `(namespace, key)` and serves the hit zero-copy: the
    /// record file is read once, validated once (header + checksum),
    /// and the returned [`PayloadView`] borrows the payload bytes in
    /// place — no copy, no per-field allocation. This is the warm-path
    /// entry point; hits additionally bump `store.zero_copy_hits`.
    pub fn get_view(&self, namespace: &str, key: u64) -> Option<PayloadView> {
        let span = yalla_obs::span("store", "get");
        let result = self.get_uninstrumented(namespace, key);
        let dur = span.finish();
        let hist = if result.is_some() {
            yalla_obs::count(yalla_obs::metrics::names::STORE_ZERO_COPY_HITS, 1);
            yalla_obs::metrics::names::LATENCY_STORE_HIT
        } else {
            yalla_obs::metrics::names::LATENCY_STORE_MISS
        };
        yalla_obs::observe(hist, dur);
        if yalla_obs::log::is_active() {
            yalla_obs::log::emit(
                "store",
                &[
                    ("ns", namespace.into()),
                    ("hit", yalla_obs::ArgValue::Int(i64::from(result.is_some()))),
                    ("dur_us", yalla_obs::ArgValue::Int(dur.as_micros() as i64)),
                ],
            );
        }
        result
    }

    fn get_uninstrumented(&self, namespace: &str, key: u64) -> Option<PayloadView> {
        let name = Store::entry_name(namespace, key);
        let bytes = match fs::read(self.dir.join(&name)) {
            Ok(b) => b,
            Err(_) => {
                self.count_miss();
                return None;
            }
        };
        match record::decode_view(&bytes, namespace, key) {
            Ok(payload) => {
                let start = payload.as_ptr() as usize - bytes.as_ptr() as usize;
                let end = start + payload.len();
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                yalla_obs::count(yalla_obs::metrics::names::STORE_HITS, 1);
                // Recency is tracked in-memory and persisted by the next
                // put; a pure-read process never takes the lock.
                self.state.lock().expect("store state").touch(&name);
                Some(PayloadView { bytes, start, end })
            }
            Err(_) => {
                let _ = fs::remove_file(self.dir.join(&name));
                let mut state = self.state.lock().expect("store state");
                state.entries.remove(&name);
                drop(state);
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                yalla_obs::count(yalla_obs::metrics::names::STORE_CORRUPT, 1);
                self.count_miss();
                self.publish_bytes();
                None
            }
        }
    }

    /// True when an entry file exists for `(namespace, key)`. A cheap
    /// stat that bumps no counters and validates nothing — used to skip
    /// redundant writes, where a false positive only costs a re-put on
    /// the next miss.
    pub fn contains(&self, namespace: &str, key: u64) -> bool {
        self.dir.join(Store::entry_name(namespace, key)).exists()
    }

    /// Stores `payload` under `(namespace, key)`. Best-effort: lock
    /// timeouts and I/O errors are swallowed (the entry is simply not
    /// cached). Evicts least-recently-used entries to stay under
    /// capacity, and persists recency ticks accumulated by reads.
    pub fn put(&self, namespace: &str, key: u64, payload: &[u8]) {
        let _span = yalla_obs::span("store", "put");
        let encoded = record::encode(namespace, key, payload);
        let damaged = self.sabotage.lock().expect("sabotage lock").apply(&encoded);
        let Some(bytes) = damaged else {
            return; // Enoent sabotage: the write never happens.
        };
        let Ok(_guard) = LockGuard::acquire(&self.dir) else {
            return;
        };
        let name = Store::entry_name(namespace, key);
        let tmp = self.dir.join(format!(
            "{name}.tmp.{}.{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        if fs::write(&tmp, &bytes).is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        if fs::rename(&tmp, self.dir.join(&name)).is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        let mut state = self.state.lock().expect("store state");
        // Fold in index changes other processes made since we last held
        // the lock (their inserts, their persisted recency).
        state.merge(&Index::load(&self.dir));
        state.insert(&name, bytes.len() as u64);
        let mut evicted = 0i64;
        while state.total_bytes() > self.capacity {
            let Some(victim) = state.lru() else { break };
            let _ = fs::remove_file(self.dir.join(&victim));
            state.entries.remove(&victim);
            evicted += 1;
        }
        let _ = state.save(&self.dir);
        drop(state);
        if evicted > 0 {
            self.counters
                .evictions
                .fetch_add(evicted, Ordering::Relaxed);
            yalla_obs::count(yalla_obs::metrics::names::STORE_EVICTIONS, evicted);
        }
        self.publish_bytes();
    }

    /// Every key currently stored under `namespace`, from a directory
    /// scan (so it sees entries written by other processes — the serve
    /// daemon uses this to rebuild its warm pool after a restart).
    pub fn keys(&self, namespace: &str) -> Vec<u64> {
        let prefix = format!("{namespace}.");
        let mut keys = BTreeSet::new();
        let Ok(read) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        for dirent in read.flatten() {
            let name = dirent.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&prefix) else {
                continue;
            };
            let Some(hex) = rest.strip_suffix(".rec") else {
                continue;
            };
            // Tmp files ("<hex>.rec.tmp...") and foreign names fail the
            // 16-hex-digit shape and are skipped.
            if hex.len() != 16 {
                continue;
            }
            if let Ok(key) = u64::from_str_radix(hex, 16) {
                keys.insert(key);
            }
        }
        keys.into_iter().collect()
    }

    /// This handle's counters plus the indexed byte total.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.counters.hits.load(Ordering::Relaxed) as u64,
            misses: self.counters.misses.load(Ordering::Relaxed) as u64,
            evictions: self.counters.evictions.load(Ordering::Relaxed) as u64,
            corrupt: self.counters.corrupt.load(Ordering::Relaxed) as u64,
            bytes: self.state.lock().expect("store state").total_bytes(),
        }
    }

    fn count_miss(&self) {
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        yalla_obs::count(yalla_obs::metrics::names::STORE_MISSES, 1);
    }

    fn publish_bytes(&self) {
        let bytes = self.state.lock().expect("store state").total_bytes();
        yalla_obs::gauge(yalla_obs::metrics::names::STORE_BYTES, bytes as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str, capacity: u64) -> Store {
        let dir =
            std::env::temp_dir().join(format!("yalla-store-lib-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open_with_capacity(dir, capacity).expect("open store")
    }

    fn cleanup(store: &Store) {
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn put_get_roundtrip_and_stats() {
        let store = temp_store("roundtrip", DEFAULT_CAPACITY);
        assert_eq!(store.get(NS_RUN, 1), None);
        store.put(NS_RUN, 1, b"artifact");
        assert_eq!(store.get(NS_RUN, 1).as_deref(), Some(b"artifact".as_ref()));
        assert!(store.contains(NS_RUN, 1));
        assert!(!store.contains(NS_RUN, 2));
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.corrupt), (1, 1, 0));
        assert!(stats.bytes > 8);
        cleanup(&store);
    }

    #[test]
    fn get_view_serves_hits_without_copying_the_payload() {
        let store = temp_store("view", DEFAULT_CAPACITY);
        store.put(NS_RUN, 3, b"zero copy body");
        let view = store.get_view(NS_RUN, 3).expect("hit");
        assert_eq!(&*view, b"zero copy body");
        // The view is a window into the whole record file, not a copy:
        // the backing buffer is strictly larger than the payload.
        assert!(view.bytes.len() > view.len());
        assert!(store.get_view(NS_RUN, 999).is_none());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // A module payload decodes straight from the view's bytes.
        let mut m = module::ModuleBuilder::new(1);
        m.intern("borrowed");
        store.put(NS_RUN, 4, &m.finish());
        let view = store.get_view(NS_RUN, 4).expect("hit");
        let reader = module::ModuleReader::parse(&view).expect("module parses");
        assert_eq!(reader.get(module::StrRef(0)).unwrap(), "borrowed");
        cleanup(&store);
    }

    #[test]
    fn namespaces_do_not_collide() {
        let store = temp_store("ns", DEFAULT_CAPACITY);
        store.put(NS_RUN, 7, b"run");
        store.put(NS_PARSE, 7, b"parse");
        assert_eq!(store.get(NS_RUN, 7).as_deref(), Some(b"run".as_ref()));
        assert_eq!(store.get(NS_PARSE, 7).as_deref(), Some(b"parse".as_ref()));
        assert_eq!(store.keys(NS_RUN), vec![7]);
        assert_eq!(store.keys(NS_SERVE), Vec::<u64>::new());
        cleanup(&store);
    }

    #[test]
    fn reopen_sees_entries() {
        let store = temp_store("reopen", DEFAULT_CAPACITY);
        store.put(NS_RUN, 42, b"persisted");
        let dir = store.dir().to_path_buf();
        drop(store);
        let again = Store::open(&dir).expect("reopen");
        assert_eq!(
            again.get(NS_RUN, 42).as_deref(),
            Some(b"persisted".as_ref())
        );
        cleanup(&again);
    }

    #[test]
    fn orphan_entry_survives_lost_index() {
        let store = temp_store("orphan", DEFAULT_CAPACITY);
        store.put(NS_RUN, 9, b"orphan-to-be");
        let dir = store.dir().to_path_buf();
        drop(store);
        fs::remove_file(dir.join(index::INDEX_FILE)).expect("lose index");
        let again = Store::open(&dir).expect("reopen");
        assert_eq!(
            again.get(NS_RUN, 9).as_deref(),
            Some(b"orphan-to-be".as_ref())
        );
        assert!(again.stats().bytes > 0, "orphan adopted into the index");
        cleanup(&again);
    }

    #[test]
    fn corrupt_entry_is_a_miss_and_deleted() {
        let store = temp_store("corrupt", DEFAULT_CAPACITY);
        store.put(NS_RUN, 5, b"will be damaged");
        let path = store.dir().join(Store::entry_name(NS_RUN, 5));
        let mut bytes = fs::read(&path).expect("read entry");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, bytes).expect("damage entry");
        assert_eq!(store.get(NS_RUN, 5), None);
        assert!(!path.exists(), "corrupt entry deleted");
        let stats = store.stats();
        assert_eq!((stats.corrupt, stats.misses, stats.hits), (1, 1, 0));
        // The slot is clean again: a fresh put works.
        store.put(NS_RUN, 5, b"replacement");
        assert_eq!(
            store.get(NS_RUN, 5).as_deref(),
            Some(b"replacement".as_ref())
        );
        cleanup(&store);
    }

    #[test]
    fn eviction_keeps_total_under_capacity_and_prefers_lru() {
        // Capacity fits roughly two entries of this size; the third put
        // must evict the least-recently-used.
        let payload = vec![0xabu8; 400];
        let overhead = record::encode(NS_RUN, 0, &payload).len() as u64;
        let store = temp_store("evict", overhead * 2 + 16);
        store.put(NS_RUN, 1, &payload);
        store.put(NS_RUN, 2, &payload);
        // Touch 1 so 2 is the LRU.
        assert!(store.get(NS_RUN, 1).is_some());
        store.put(NS_RUN, 3, &payload);
        assert!(store.stats().bytes <= overhead * 2 + 16, "within bound");
        assert!(store.stats().evictions >= 1);
        assert!(!store.contains(NS_RUN, 2), "LRU entry evicted");
        assert!(store.contains(NS_RUN, 1), "recently-read entry kept");
        assert!(store.contains(NS_RUN, 3), "new entry kept");
        cleanup(&store);
    }

    #[test]
    fn two_handles_share_one_directory() {
        let a = temp_store("shared", DEFAULT_CAPACITY);
        let b = Store::open(a.dir()).expect("second handle");
        a.put(NS_RUN, 11, b"from a");
        assert_eq!(b.get(NS_RUN, 11).as_deref(), Some(b"from a".as_ref()));
        b.put(NS_RUN, 12, b"from b");
        assert_eq!(a.get(NS_RUN, 12).as_deref(), Some(b"from b".as_ref()));
        cleanup(&a);
    }

    #[test]
    fn concurrent_handles_hammering_one_dir() {
        // Satellite requirement: separate Store handles (as two daemons
        // would hold) on one directory under a 1 MiB cap — no deadlock,
        // no torn reads, size stays within bound.
        let cap = 1024 * 1024;
        let a = temp_store("hammer", cap as u64);
        let dir = a.dir().to_path_buf();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let dir = dir.clone();
                scope.spawn(move || {
                    let store = Store::open_with_capacity(&dir, cap as u64).expect("handle");
                    let payload = vec![t as u8; 8 * 1024];
                    for i in 0..40u64 {
                        let key = (t << 32) | i;
                        store.put(NS_RUN, key, &payload);
                        if let Some(back) = store.get(NS_RUN, key) {
                            // A read either misses (evicted/raced) or
                            // returns exactly what this thread wrote —
                            // never torn bytes.
                            assert_eq!(back, payload, "torn read on key {key:x}");
                        }
                        // Cross-thread reads must also be whole records.
                        let other = ((t + 1) % 4) << 32 | i;
                        if let Some(back) = store.get(NS_RUN, other) {
                            assert!(back.iter().all(|&b| b == back[0]), "torn cross-thread read");
                        }
                    }
                });
            }
        });
        let fresh = Store::open_with_capacity(&dir, cap as u64).expect("audit handle");
        assert!(
            fresh.stats().bytes <= cap as u64,
            "size bound violated: {} > {cap}",
            fresh.stats().bytes
        );
        cleanup(&a);
    }

    #[test]
    fn sabotage_modes_degrade_to_miss() {
        for (mode, corrupting) in [
            (Sabotage::Truncate, true),
            (Sabotage::FlipByte, true),
            (Sabotage::PartialWrite, true),
            (Sabotage::Enoent, false),
        ] {
            let store = temp_store("sabotage", DEFAULT_CAPACITY);
            store.set_sabotage(mode);
            store.put(NS_RUN, 1, b"doomed payload bytes");
            store.set_sabotage(Sabotage::None);
            assert_eq!(store.get(NS_RUN, 1), None, "{mode:?} must miss");
            let stats = store.stats();
            assert_eq!(
                stats.corrupt,
                if corrupting { 1 } else { 0 },
                "{mode:?} corrupt count"
            );
            assert_eq!(stats.misses, 1, "{mode:?} miss count");
            // The store recovers: an honest put lands.
            store.put(NS_RUN, 1, b"recovered");
            assert_eq!(store.get(NS_RUN, 1).as_deref(), Some(b"recovered".as_ref()));
            cleanup(&store);
        }
    }

    #[test]
    fn keys_lists_only_well_formed_entries() {
        let store = temp_store("keys", DEFAULT_CAPACITY);
        store.put(NS_SERVE, 0xdead, b"project");
        store.put(NS_SERVE, 0xbeef, b"project");
        fs::write(store.dir().join("serve.nothex.rec"), b"junk").expect("junk");
        fs::write(store.dir().join("serve.rec"), b"junk").expect("junk");
        assert_eq!(store.keys(NS_SERVE), vec![0xbeef, 0xdead]);
        cleanup(&store);
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Reference values for FNV-1a 64: empty input = offset basis;
        // "a" = 0xaf63dc4c8601ec8c.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
