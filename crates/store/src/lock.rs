//! Single-writer locking for a shared cache directory.
//!
//! Writers (puts and evictions) serialize on a lock *file* created with
//! `O_CREAT|O_EXCL` — the only atomic mutual-exclusion primitive
//! available from std without platform extensions. Readers never take
//! the lock: entry files are immutable once renamed into place, and the
//! record checksum footer catches the one racy window left (reading an
//! entry the writer is concurrently unlinking yields either full bytes
//! or `NotFound`, both handled).
//!
//! A process killed while holding the lock (the crash-recovery tests do
//! exactly this) leaves the file behind; waiters break the lock once its
//! mtime is older than [`STALE_AFTER`]. Breaking a stale lock can at
//! worst duplicate an eviction pass — every mutation the lock guards is
//! idempotent — so a conservative, short staleness window is safe.

use std::fs::{self, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// How long a lock file may sit untouched before waiters break it.
pub const STALE_AFTER: Duration = Duration::from_secs(5);

/// How long acquisition retries before giving up entirely.
const ACQUIRE_TIMEOUT: Duration = Duration::from_secs(10);

/// Pause between acquisition attempts.
const RETRY_EVERY: Duration = Duration::from_millis(1);

/// Holds the directory write lock; releases (unlinks) on drop.
#[derive(Debug)]
pub struct LockGuard {
    path: PathBuf,
}

impl LockGuard {
    /// Acquires `dir/lock`, spinning with short sleeps and breaking the
    /// lock if its holder looks dead. `Err` means the lock could not be
    /// acquired within the timeout — callers skip the mutation (the
    /// store is best-effort) rather than block forever.
    pub fn acquire(dir: &Path) -> io::Result<LockGuard> {
        let path = dir.join("lock");
        let deadline = std::time::Instant::now() + ACQUIRE_TIMEOUT;
        loop {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(_) => return Ok(LockGuard { path }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if lock_is_stale(&path) {
                        // Best-effort break: if another waiter removed it
                        // first, the next create_new attempt decides who
                        // owns the fresh lock.
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    if std::time::Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "store lock acquisition timed out",
                        ));
                    }
                    std::thread::sleep(RETRY_EVERY);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn lock_is_stale(path: &Path) -> bool {
    let Ok(meta) = fs::metadata(path) else {
        // Vanished between create_new failing and the stat — not stale,
        // just contended; retry.
        return false;
    };
    let Ok(mtime) = meta.modified() else {
        return false;
    };
    match SystemTime::now().duration_since(mtime) {
        Ok(age) => age > STALE_AFTER,
        // mtime in the future (clock skew): treat as live.
        Err(_) => false,
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("yalla-store-lock-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn acquire_release_reacquire() {
        let dir = temp_dir("basic");
        let guard = LockGuard::acquire(&dir).expect("first acquire");
        assert!(dir.join("lock").exists());
        drop(guard);
        assert!(!dir.join("lock").exists());
        let _again = LockGuard::acquire(&dir).expect("reacquire");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_is_broken() {
        let dir = temp_dir("stale");
        // A lock file left behind by a "crashed" holder, aged past the
        // staleness window.
        let stale = dir.join("lock");
        fs::write(&stale, b"").expect("plant stale lock");
        let old = SystemTime::now() - (STALE_AFTER + Duration::from_secs(60));
        filetime_set_mtime(&stale, old);
        let _guard = LockGuard::acquire(&dir).expect("break stale lock");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Sets mtime using only std: re-create the file, then fall back to
    /// asserting via a freshly-opened handle's set_modified (Rust 1.75+).
    fn filetime_set_mtime(path: &Path, to: SystemTime) {
        let f = OpenOptions::new().write(true).open(path).expect("open");
        f.set_modified(to).expect("set mtime");
    }

    #[test]
    fn contended_threads_serialize() {
        let dir = temp_dir("contend");
        let counter = std::sync::atomic::AtomicU32::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        let _g = LockGuard::acquire(&dir).expect("acquire");
                        // Non-atomic read-modify-write protected only by
                        // the file lock: a broken lock would lose counts.
                        let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                        std::thread::yield_now();
                        counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 100);
        let _ = fs::remove_dir_all(&dir);
    }
}
