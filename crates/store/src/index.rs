//! The on-disk LRU index.
//!
//! One file (`index.v1`) lists every entry the store believes it holds:
//! file name, last-use tick, and size. The index is a *hint*, not the
//! source of truth — entries are self-validating records, so a lost or
//! corrupt index costs only LRU recency (orphaned entries are re-adopted
//! at tick zero by a directory scan), never correctness. Writers rewrite
//! it atomically under the directory lock; a reload-merge before each
//! mutation folds in ticks advanced by other processes.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::codec::{ByteReader, ByteWriter};

const INDEX_MAGIC: [u8; 3] = *b"YSI";
const INDEX_VERSION: u8 = 1;

/// File name of the index inside a cache directory.
pub const INDEX_FILE: &str = "index.v1";

/// Per-entry bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryMeta {
    /// Logical LRU clock value at last use (higher = more recent).
    pub tick: u64,
    /// Entry file size in bytes.
    pub size: u64,
}

/// The LRU index: entry file name → metadata, plus the logical clock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Index {
    /// Entries keyed by file name (`<ns>.<key:016x>.rec`).
    pub entries: BTreeMap<String, EntryMeta>,
    /// The highest tick handed out so far.
    pub clock: u64,
}

impl Index {
    /// Loads the index from `dir`, returning an empty index when the
    /// file is missing or fails to decode (the directory scan re-adopts
    /// any entries it listed).
    pub fn load(dir: &Path) -> Index {
        let Ok(bytes) = fs::read(dir.join(INDEX_FILE)) else {
            return Index::default();
        };
        Index::decode(&bytes).unwrap_or_default()
    }

    /// Atomically rewrites the index file (tmp + rename).
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        let tmp = dir.join(format!("{INDEX_FILE}.tmp.{}", std::process::id()));
        fs::write(&tmp, self.encode())?;
        fs::rename(&tmp, dir.join(INDEX_FILE))
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(INDEX_MAGIC[0]);
        w.put_u8(INDEX_MAGIC[1]);
        w.put_u8(INDEX_MAGIC[2]);
        w.put_u8(INDEX_VERSION);
        w.put_u64(self.clock);
        w.put_u32(self.entries.len() as u32);
        for (name, meta) in &self.entries {
            w.put_str(name);
            w.put_u64(meta.tick);
            w.put_u64(meta.size);
        }
        let mut bytes = w.into_bytes();
        let sum = crate::fnv64(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        bytes
    }

    fn decode(bytes: &[u8]) -> Option<Index> {
        if bytes.len() < 8 {
            return None;
        }
        let (body, footer) = bytes.split_at(bytes.len() - 8);
        if crate::fnv64(body) != u64::from_le_bytes(footer.try_into().ok()?) {
            return None;
        }
        let mut r = ByteReader::new(body);
        let magic = [r.get_u8().ok()?, r.get_u8().ok()?, r.get_u8().ok()?];
        let version = r.get_u8().ok()?;
        if magic != INDEX_MAGIC || version != INDEX_VERSION {
            return None;
        }
        let clock = r.get_u64().ok()?;
        let n = r.get_u32().ok()?;
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let name = r.get_str().ok()?.to_string();
            let tick = r.get_u64().ok()?;
            let size = r.get_u64().ok()?;
            entries.insert(name, EntryMeta { tick, size });
        }
        if !r.is_exhausted() {
            return None;
        }
        Some(Index { entries, clock })
    }

    /// Folds `other` into `self`: union of entries, per-entry max tick,
    /// max clock. Used to reconcile with the on-disk index another
    /// process rewrote since we last looked.
    pub fn merge(&mut self, other: &Index) {
        self.clock = self.clock.max(other.clock);
        for (name, meta) in &other.entries {
            let slot = self.entries.entry(name.clone()).or_insert(*meta);
            if meta.tick > slot.tick {
                slot.tick = meta.tick;
            }
            slot.size = meta.size;
        }
    }

    /// Adopts `*.rec` files present in `dir` but absent from the index
    /// (orphans from a crash between rename and index rewrite, or from a
    /// lost index). Adopted entries start at tick zero: first to evict,
    /// which is the conservative choice for entries of unknown age.
    pub fn adopt_orphans(&mut self, dir: &Path) {
        let Ok(read) = fs::read_dir(dir) else {
            return;
        };
        for dirent in read.flatten() {
            let name = dirent.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.ends_with(".rec") || self.entries.contains_key(name) {
                continue;
            }
            let size = dirent.metadata().map(|m| m.len()).unwrap_or(0);
            self.entries
                .insert(name.to_string(), EntryMeta { tick: 0, size });
        }
    }

    /// Sum of entry sizes.
    pub fn total_bytes(&self) -> u64 {
        self.entries.values().map(|m| m.size).sum()
    }

    /// Records a use of `name` at a fresh tick.
    pub fn touch(&mut self, name: &str) {
        if let Some(meta) = self.entries.get_mut(name) {
            self.clock += 1;
            meta.tick = self.clock;
        }
    }

    /// Inserts (or replaces) `name` at a fresh tick.
    pub fn insert(&mut self, name: &str, size: u64) {
        self.clock += 1;
        let tick = self.clock;
        self.entries
            .insert(name.to_string(), EntryMeta { tick, size });
    }

    /// The least-recently-used entry name, if any.
    pub fn lru(&self) -> Option<String> {
        self.entries
            .iter()
            .min_by_key(|(name, meta)| (meta.tick, name.as_str().to_string()))
            .map(|(name, _)| name.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("yalla-store-index-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = temp_dir("roundtrip");
        let mut idx = Index::default();
        idx.insert("run.0000000000000001.rec", 100);
        idx.insert("parse.00000000000000ff.rec", 40);
        idx.save(&dir).expect("save");
        assert_eq!(Index::load(&dir), idx);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_index_loads_empty() {
        let dir = temp_dir("corrupt");
        let mut idx = Index::default();
        idx.insert("run.0000000000000001.rec", 100);
        idx.save(&dir).expect("save");
        // Damage one byte; the checksum catches it and load falls back
        // to an empty index instead of erroring or mis-decoding.
        let path = dir.join(INDEX_FILE);
        let mut bytes = fs::read(&path).expect("read");
        bytes[6] ^= 0xff;
        fs::write(&path, bytes).expect("rewrite");
        assert_eq!(Index::load(&dir), Index::default());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_index_loads_empty() {
        let dir = temp_dir("missing");
        assert_eq!(Index::load(&dir), Index::default());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_takes_max_ticks_and_unions() {
        let mut a = Index::default();
        a.insert("x.rec", 1); // tick 1
        a.insert("y.rec", 2); // tick 2
        let mut b = Index::default();
        b.insert("y.rec", 2); // tick 1
        b.insert("z.rec", 3); // tick 2
        b.touch("y.rec"); // tick 3
        a.merge(&b);
        assert_eq!(a.clock, 3);
        assert_eq!(a.entries.len(), 3);
        assert_eq!(a.entries["y.rec"].tick, 3);
        assert_eq!(a.entries["x.rec"].tick, 1);
    }

    #[test]
    fn orphans_are_adopted_at_tick_zero() {
        let dir = temp_dir("orphans");
        fs::write(dir.join("run.00000000000000aa.rec"), b"12345").expect("write");
        fs::write(dir.join("not-an-entry.txt"), b"ignored").expect("write");
        let mut idx = Index::default();
        idx.adopt_orphans(&dir);
        assert_eq!(idx.entries.len(), 1);
        let meta = idx.entries["run.00000000000000aa.rec"];
        assert_eq!((meta.tick, meta.size), (0, 5));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_order_is_tick_then_name() {
        let mut idx = Index::default();
        idx.insert("b.rec", 1);
        idx.insert("a.rec", 1);
        idx.touch("b.rec");
        assert_eq!(idx.lru().as_deref(), Some("a.rec"));
        idx.touch("a.rec");
        assert_eq!(idx.lru().as_deref(), Some("b.rec"));
    }
}
