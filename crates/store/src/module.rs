//! The binary module format: interned strings + tagged partitions,
//! readable zero-copy (DESIGN.md §13).
//!
//! Modeled on the MSVC IFC container (and the C++20 BMI idea of a
//! persistent binary serialization of parsed state): a module is a
//! self-describing buffer holding
//!
//! 1. a **header** (magic, format version, caller-chosen module kind),
//! 2. a **partition directory** — one entry per tagged partition with its
//!    row size and row count (varint-coded; the directory is tiny),
//! 3. the **partition payloads**, concatenated in directory order —
//!    fixed-layout rows where zero-copy random access matters, varint
//!    streams where compactness matters,
//! 4. an **interned string table**: a fixed-width `u32` end-offset array
//!    (fixed so string N is one slice away, no scan) over one UTF-8 blob.
//!    Every string is stored once; rows refer to strings by [`StrRef`].
//!
//! [`ModuleReader::parse`] validates the whole container once — bounds,
//! row-size arithmetic, offset monotonicity, UTF-8, char boundaries —
//! and after that every access is pure slicing over the borrowed buffer:
//! no allocation, no copying, no re-validation. Decoding never panics;
//! any malformed input surfaces as [`CodecError`], which the record
//! layer above treats as a corrupt entry (a miss, never a failure).
//!
//! The integer framing deliberately mixes widths (ISSUE satellite): the
//! directory and variable partitions use LEB128 varints, while row
//! payloads and the string-offset array stay fixed-width because
//! zero-copy `row(i)` / `get(StrRef)` need constant-time offsets.

use std::collections::HashMap;

use crate::codec::{ByteReader, ByteWriter, CodecError};

/// Version byte of the module container itself. The record layer's
/// [`crate::record::FORMAT_VERSION`] already invalidates old entries
/// wholesale; this inner version keeps the container self-describing
/// for tools reading a module outside a record (goldens, `yalla dump`).
pub const MODULE_VERSION: u8 = 1;

const MAGIC: [u8; 2] = *b"YM";

/// Index of an interned string in a module's string table.
///
/// A `StrRef` is only meaningful against the module that produced it —
/// it is *not* the process-wide `yalla_cpp::intern::Sym`; encoders
/// translate between the two at the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrRef(pub u32);

/// One partition under construction: a tag, a row discipline, and bytes.
#[derive(Debug)]
pub struct PartitionBuilder {
    tag: u8,
    /// Fixed byte size per row; 0 for variable-size rows.
    row_size: usize,
    rows: u64,
    buf: ByteWriter,
}

impl PartitionBuilder {
    /// A partition of fixed-layout rows, `row_size` bytes each.
    pub fn fixed(tag: u8, row_size: usize) -> Self {
        assert!(row_size > 0, "fixed rows need a nonzero size");
        PartitionBuilder {
            tag,
            row_size,
            rows: 0,
            buf: ByteWriter::new(),
        }
    }

    /// A partition of variable-size rows (read back as one varint
    /// stream).
    pub fn var(tag: u8) -> Self {
        PartitionBuilder {
            tag,
            row_size: 0,
            rows: 0,
            buf: ByteWriter::new(),
        }
    }

    /// Starts one row and hands out the writer. For fixed partitions the
    /// caller must append exactly `row_size` bytes before the next call
    /// ([`ModuleBuilder::push`] asserts the arithmetic).
    pub fn row(&mut self) -> &mut ByteWriter {
        self.rows += 1;
        &mut self.buf
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }
}

/// Builds one module: intern strings, push partitions, [`finish`].
///
/// [`finish`]: ModuleBuilder::finish
#[derive(Debug)]
pub struct ModuleBuilder {
    kind: u8,
    strings: Vec<String>,
    lookup: HashMap<String, u32>,
    parts: Vec<PartitionBuilder>,
}

impl ModuleBuilder {
    /// An empty module of caller-defined `kind` (the payload-schema tag
    /// the consumer dispatches on).
    pub fn new(kind: u8) -> Self {
        ModuleBuilder {
            kind,
            strings: Vec::new(),
            lookup: HashMap::new(),
            parts: Vec::new(),
        }
    }

    /// Interns `s`, returning the existing reference when the module has
    /// seen the string before (repeated paths and names cost 4 bytes per
    /// row, not a copy).
    pub fn intern(&mut self, s: &str) -> StrRef {
        if let Some(&i) = self.lookup.get(s) {
            return StrRef(i);
        }
        let i = u32::try_from(self.strings.len()).expect("string table < 2^32");
        self.strings.push(s.to_string());
        self.lookup.insert(s.to_string(), i);
        StrRef(i)
    }

    /// Adds a finished partition. Panics (a builder bug, not an input
    /// condition) if a fixed partition's bytes disagree with its row
    /// arithmetic.
    pub fn push(&mut self, part: PartitionBuilder) {
        if part.row_size > 0 {
            assert_eq!(
                part.buf.len() as u64,
                part.rows * part.row_size as u64,
                "fixed partition {}: rows × row_size must equal the bytes written",
                part.tag
            );
        }
        assert!(self.parts.len() < 255, "too many partitions");
        self.parts.push(part);
    }

    /// Serializes the module.
    pub fn finish(self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(MAGIC[0]);
        w.put_u8(MAGIC[1]);
        w.put_u8(MODULE_VERSION);
        w.put_u8(self.kind);
        w.put_u8(self.parts.len() as u8);
        for p in &self.parts {
            w.put_u8(p.tag);
            w.put_varint(p.row_size as u64);
            w.put_varint(p.rows);
            w.put_varint(p.buf.len() as u64);
        }
        let mut bytes = w.into_bytes();
        for p in self.parts {
            bytes.extend_from_slice(&p.buf.into_bytes());
        }
        // String table: varint count, fixed u32 end offsets (so lookup
        // is one slice), then the blob.
        let mut tail = ByteWriter::new();
        tail.put_varint(self.strings.len() as u64);
        let mut end = 0u32;
        for s in &self.strings {
            end = end
                .checked_add(s.len() as u32)
                .expect("string blob < 4 GiB");
            tail.put_u32(end);
        }
        bytes.extend_from_slice(&tail.into_bytes());
        for s in &self.strings {
            bytes.extend_from_slice(s.as_bytes());
        }
        bytes
    }
}

/// One validated partition, borrowed from the module buffer.
#[derive(Debug, Clone, Copy)]
pub struct Part<'a> {
    row_size: usize,
    rows: usize,
    bytes: &'a [u8],
}

impl<'a> Part<'a> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row `i` of a fixed-layout partition, as a typed view. Errors on a
    /// variable partition or an out-of-range index.
    pub fn row(&self, i: usize) -> Result<Row<'a>, CodecError> {
        if self.row_size == 0 || i >= self.rows {
            return Err(CodecError::Truncated);
        }
        let start = i * self.row_size;
        Ok(Row(&self.bytes[start..start + self.row_size]))
    }

    /// Iterates the fixed-layout rows.
    pub fn iter(&self) -> impl Iterator<Item = Row<'a>> + '_ {
        let n = if self.row_size == 0 { 0 } else { self.rows };
        (0..n).map(move |i| self.row(i).expect("validated fixed row"))
    }

    /// A sequential reader over a variable-size partition's bytes.
    pub fn reader(&self) -> ByteReader<'a> {
        ByteReader::new(self.bytes)
    }
}

/// A borrowed view of one fixed-layout row.
#[derive(Debug, Clone, Copy)]
pub struct Row<'a>(&'a [u8]);

impl Row<'_> {
    fn take(&self, off: usize, n: usize) -> Result<&[u8], CodecError> {
        let end = off.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.0.len() {
            return Err(CodecError::Truncated);
        }
        Ok(&self.0[off..end])
    }

    /// The byte at `off`.
    pub fn u8_at(&self, off: usize) -> Result<u8, CodecError> {
        Ok(self.take(off, 1)?[0])
    }

    /// The little-endian `u32` at `off`.
    pub fn u32_at(&self, off: usize) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(off, 4)?.try_into().expect("4 bytes"),
        ))
    }

    /// The little-endian `u64` at `off`.
    pub fn u64_at(&self, off: usize) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(off, 8)?.try_into().expect("8 bytes"),
        ))
    }

    /// The string reference (`u32`) at `off`.
    pub fn str_at(&self, off: usize) -> Result<StrRef, CodecError> {
        Ok(StrRef(self.u32_at(off)?))
    }
}

/// A zero-copy view of one module: validated once at [`parse`], then
/// every partition row and interned string is a borrow of the buffer.
///
/// [`parse`]: ModuleReader::parse
#[derive(Debug)]
pub struct ModuleReader<'a> {
    kind: u8,
    parts: Vec<(u8, Part<'a>)>,
    str_ends: &'a [u8],
    str_count: usize,
    blob: &'a str,
}

impl<'a> ModuleReader<'a> {
    /// Parses and validates `buf`. After this returns, no accessor can
    /// fail on malformed data — only on caller errors (bad tag, bad
    /// index), and those return typed errors, never panic.
    pub fn parse(buf: &'a [u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(buf);
        let magic = [r.get_u8()?, r.get_u8()?];
        if magic != MAGIC {
            return Err(CodecError::BadTag(magic[0]));
        }
        let version = r.get_u8()?;
        if version != MODULE_VERSION {
            return Err(CodecError::BadTag(version));
        }
        let kind = r.get_u8()?;
        let npart = r.get_u8()? as usize;
        let mut dir = Vec::with_capacity(npart);
        for _ in 0..npart {
            let tag = r.get_u8()?;
            let row_size = usize::try_from(r.get_varint()?).map_err(|_| CodecError::Truncated)?;
            let rows = usize::try_from(r.get_varint()?).map_err(|_| CodecError::Truncated)?;
            let len = usize::try_from(r.get_varint()?).map_err(|_| CodecError::Truncated)?;
            if row_size > 0 {
                let expect = row_size.checked_mul(rows).ok_or(CodecError::Truncated)?;
                if expect != len {
                    return Err(CodecError::Truncated);
                }
            }
            dir.push((tag, row_size, rows, len));
        }
        let mut parts = Vec::with_capacity(npart);
        for (tag, row_size, rows, len) in dir {
            if parts.iter().any(|(t, _)| *t == tag) {
                return Err(CodecError::BadTag(tag));
            }
            let bytes = r.get_slice(len)?;
            parts.push((
                tag,
                Part {
                    row_size,
                    rows,
                    bytes,
                },
            ));
        }
        let str_count = usize::try_from(r.get_varint()?).map_err(|_| CodecError::Truncated)?;
        let ends_len = str_count.checked_mul(4).ok_or(CodecError::Truncated)?;
        let str_ends = r.get_slice(ends_len)?;
        let blob_bytes = r.rest();
        let blob = std::str::from_utf8(blob_bytes).map_err(|_| CodecError::BadUtf8)?;
        // Offsets must be monotone, in range, end exactly at the blob's
        // end, and land on char boundaries — validated once here so
        // `get` is pure slicing.
        let mut prev = 0usize;
        for i in 0..str_count {
            let end = u32::from_le_bytes(str_ends[i * 4..i * 4 + 4].try_into().expect("4 bytes"))
                as usize;
            if end < prev || end > blob.len() || !blob.is_char_boundary(end) {
                return Err(CodecError::Truncated);
            }
            prev = end;
        }
        if prev != blob.len() {
            return Err(CodecError::Truncated);
        }
        Ok(ModuleReader {
            kind,
            parts,
            str_ends,
            str_count,
            blob,
        })
    }

    /// The caller-defined module kind byte.
    pub fn kind(&self) -> u8 {
        self.kind
    }

    /// The partition tagged `tag`, if present.
    pub fn part(&self, tag: u8) -> Option<Part<'a>> {
        self.parts.iter().find(|(t, _)| *t == tag).map(|(_, p)| *p)
    }

    /// `(tag, partition)` pairs in directory order.
    pub fn parts(&self) -> impl Iterator<Item = (u8, Part<'a>)> + '_ {
        self.parts.iter().copied()
    }

    /// Number of interned strings.
    pub fn str_count(&self) -> usize {
        self.str_count
    }

    fn end_of(&self, i: usize) -> usize {
        u32::from_le_bytes(self.str_ends[i * 4..i * 4 + 4].try_into().expect("4 bytes")) as usize
    }

    /// The interned string behind `r` — a borrow of the module buffer,
    /// no allocation, no validation (done at parse time).
    pub fn get(&self, r: StrRef) -> Result<&'a str, CodecError> {
        let i = r.0 as usize;
        if i >= self.str_count {
            return Err(CodecError::Truncated);
        }
        let start = if i == 0 { 0 } else { self.end_of(i - 1) };
        Ok(&self.blob[start..self.end_of(i)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T_FIXED: u8 = 1;
    const T_VAR: u8 = 2;

    fn sample() -> Vec<u8> {
        let mut m = ModuleBuilder::new(7);
        let a = m.intern("alpha");
        let b = m.intern("beta");
        assert_eq!(m.intern("alpha"), a, "interning dedups");
        let mut fixed = PartitionBuilder::fixed(T_FIXED, 12);
        for (i, s) in [(1u32, a), (2, b), (3, a)] {
            let row = fixed.row();
            row.put_u32(s.0);
            row.put_u64(u64::from(i) * 100);
        }
        m.push(fixed);
        let mut var = PartitionBuilder::var(T_VAR);
        let w = var.row();
        w.put_varint(300);
        w.put_vstr("inline payload");
        m.push(var);
        m.finish()
    }

    #[test]
    fn roundtrip_with_zero_copy_views() {
        let bytes = sample();
        let m = ModuleReader::parse(&bytes).expect("parses");
        assert_eq!(m.kind(), 7);
        assert_eq!(m.str_count(), 2);
        let fixed = m.part(T_FIXED).expect("fixed partition");
        assert_eq!(fixed.rows(), 3);
        let row1 = fixed.row(1).unwrap();
        assert_eq!(m.get(row1.str_at(0).unwrap()).unwrap(), "beta");
        assert_eq!(row1.u64_at(4).unwrap(), 200);
        let names: Vec<&str> = fixed
            .iter()
            .map(|r| m.get(r.str_at(0).unwrap()).unwrap())
            .collect();
        assert_eq!(names, ["alpha", "beta", "alpha"]);
        let var = m.part(T_VAR).expect("var partition");
        let mut r = var.reader();
        assert_eq!(r.get_varint().unwrap(), 300);
        assert_eq!(r.get_vstr().unwrap(), "inline payload");
        assert!(m.part(99).is_none());
    }

    #[test]
    fn interned_strings_are_stored_once() {
        let mut dedup = ModuleBuilder::new(0);
        for _ in 0..100 {
            dedup.intern("the/same/long/path/over/and/over.hpp");
        }
        let mut repeat = ModuleBuilder::new(0);
        repeat.intern("the/same/long/path/over/and/over.hpp");
        assert_eq!(dedup.finish().len(), repeat.finish().len());
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            match ModuleReader::parse(&bytes[..cut]) {
                Err(_) => {}
                Ok(m) => {
                    // A prefix that still parses must not alias the full
                    // module's string table (possible only when the cut
                    // lands exactly after a shorter valid blob).
                    assert!(cut < bytes.len(), "full buffer re-parsed at {cut}");
                    assert!(m.str_count() <= 2);
                }
            }
        }
    }

    #[test]
    fn bad_magic_version_and_duplicate_tags_are_rejected() {
        let good = sample();
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(ModuleReader::parse(&bad).is_err(), "magic");
        let mut bad = good.clone();
        bad[2] = MODULE_VERSION + 1;
        assert!(ModuleReader::parse(&bad).is_err(), "version");
        let mut m = ModuleBuilder::new(0);
        m.push(PartitionBuilder::var(5));
        let mut dup = PartitionBuilder::var(5);
        dup.row().put_u8(1);
        m.push(dup);
        assert!(ModuleReader::parse(&m.finish()).is_err(), "duplicate tag");
    }

    #[test]
    fn string_table_boundary_corruption_is_rejected() {
        let mut m = ModuleBuilder::new(0);
        m.intern("héllo"); // multi-byte char to probe boundaries
        m.intern("world");
        let bytes = m.finish();
        let good = ModuleReader::parse(&bytes).expect("parses");
        assert_eq!(good.get(StrRef(0)).unwrap(), "héllo");
        // Flip each byte of the offset array / blob region: decode must
        // never panic, and any successful parse must still hand back
        // valid UTF-8 slices.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x11;
            if let Ok(m) = ModuleReader::parse(&bad) {
                for s in 0..m.str_count() {
                    let _ = m.get(StrRef(s as u32));
                }
            }
        }
    }

    #[test]
    fn out_of_range_accesses_are_errors_not_panics() {
        let bytes = sample();
        let m = ModuleReader::parse(&bytes).unwrap();
        assert!(m.get(StrRef(2)).is_err());
        let fixed = m.part(T_FIXED).unwrap();
        assert!(fixed.row(3).is_err());
        assert!(fixed.row(0).unwrap().u64_at(5).is_err());
        let var = m.part(T_VAR).unwrap();
        assert!(var.row(0).is_err(), "var partitions have no fixed rows");
    }

    #[test]
    fn empty_module_roundtrips() {
        let bytes = ModuleBuilder::new(3).finish();
        let m = ModuleReader::parse(&bytes).expect("parses");
        assert_eq!(m.kind(), 3);
        assert_eq!(m.str_count(), 0);
        assert_eq!(m.parts().count(), 0);
    }
}
