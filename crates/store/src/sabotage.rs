//! Fault injection for the on-disk store.
//!
//! A sabotage mode corrupts entries *as they are written*, modeling the
//! on-disk damage a crash, torn write, or bit-rot would leave behind:
//! the damaged bytes still land via the normal atomic tmp-file + rename
//! path, so the reader-side contract is exercised exactly as it would be
//! against real corruption. Set `YALLA_STORE_SABOTAGE` (or call
//! [`crate::Store::set_sabotage`]) to enable; the fault suite in
//! `tests/store_faults.rs` proves every mode degrades to a cache miss
//! with a `store.corruptions` bump and byte-identical final artifacts.

/// What to do to each entry at write time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sabotage {
    /// Write entries faithfully.
    #[default]
    None,
    /// Write only the first half of the record (torn write).
    Truncate,
    /// XOR one payload byte (bit rot).
    FlipByte,
    /// Write the record minus its checksum footer (crash before the
    /// final block hit the disk).
    PartialWrite,
    /// Skip the write entirely — the entry never exists, so later
    /// lookups are plain misses (no corruption to detect).
    Enoent,
}

impl Sabotage {
    /// Parses a `YALLA_STORE_SABOTAGE` value. Unknown strings disable
    /// sabotage rather than erroring: fault injection is a test aid and
    /// must never take the store down.
    pub fn parse(value: &str) -> Sabotage {
        match value.trim() {
            "truncate" => Sabotage::Truncate,
            "flip-byte" => Sabotage::FlipByte,
            "partial-write" => Sabotage::PartialWrite,
            "enoent" => Sabotage::Enoent,
            _ => Sabotage::None,
        }
    }

    /// Reads `YALLA_STORE_SABOTAGE` from the environment.
    pub fn from_env() -> Sabotage {
        match std::env::var("YALLA_STORE_SABOTAGE") {
            Ok(v) => Sabotage::parse(&v),
            Err(_) => Sabotage::None,
        }
    }

    /// Applies this mode to an encoded record, returning the bytes to
    /// write — or `None` when the write should be skipped entirely.
    pub fn apply(self, record: &[u8]) -> Option<Vec<u8>> {
        match self {
            Sabotage::None => Some(record.to_vec()),
            Sabotage::Truncate => Some(record[..record.len() / 2].to_vec()),
            Sabotage::FlipByte => {
                let mut bytes = record.to_vec();
                // Flip a byte in the middle: lands in the payload for any
                // realistically-sized record, and never in the footer.
                let at = bytes.len() / 2;
                bytes[at] ^= 0x40;
                Some(bytes)
            }
            Sabotage::PartialWrite => Some(record[..record.len().saturating_sub(8)].to_vec()),
            Sabotage::Enoent => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    #[test]
    fn parse_known_and_unknown() {
        assert_eq!(Sabotage::parse("truncate"), Sabotage::Truncate);
        assert_eq!(Sabotage::parse("flip-byte"), Sabotage::FlipByte);
        assert_eq!(Sabotage::parse("partial-write"), Sabotage::PartialWrite);
        assert_eq!(Sabotage::parse("enoent"), Sabotage::Enoent);
        assert_eq!(Sabotage::parse(""), Sabotage::None);
        assert_eq!(Sabotage::parse("what"), Sabotage::None);
    }

    #[test]
    fn every_corrupting_mode_defeats_decode() {
        let rec = record::encode("run", 7, b"a realistic payload with some length");
        for mode in [
            Sabotage::Truncate,
            Sabotage::FlipByte,
            Sabotage::PartialWrite,
        ] {
            let damaged = mode.apply(&rec).expect("corrupting modes still write");
            assert!(
                record::decode(&damaged, "run", 7).is_err(),
                "{mode:?} produced a decodable record"
            );
        }
    }

    #[test]
    fn none_is_faithful_and_enoent_skips() {
        let rec = record::encode("run", 7, b"x");
        assert_eq!(Sabotage::None.apply(&rec).unwrap(), rec);
        assert_eq!(Sabotage::Enoent.apply(&rec), None);
    }
}
