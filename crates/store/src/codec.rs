//! A minimal length-prefixed binary codec for store payloads.
//!
//! Every multi-byte integer is little-endian; strings and byte blobs are
//! prefixed with a `u32` length. Decoding never panics: any truncation,
//! overlong length, or invalid UTF-8 surfaces as [`CodecError`], which
//! callers treat as a corrupt record (a cache miss, never a failure).

use std::fmt;

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value it promised.
    Truncated,
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A version or tag byte had an unknown value.
    BadTag(u8),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload truncated"),
            CodecError::BadUtf8 => write!(f, "payload string is not UTF-8"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only payload builder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an LEB128 varint. Small values (lengths, counts, table
    /// indices) take one byte instead of the eight `put_u64` always
    /// burns; the encoding is canonical (minimal length), so re-encoding
    /// a decoded value reproduces the same bytes.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a length-prefixed byte blob.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a varint-length-prefixed byte blob (the compact framing
    /// the binary module format uses).
    pub fn put_vbytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends a varint-length-prefixed UTF-8 string.
    pub fn put_vstr(&mut self, v: &str) {
        self.put_vbytes(v.as_bytes());
    }

    /// The accumulated payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Sequential payload reader.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an LEB128 varint. Rejects encodings longer than ten bytes,
    /// bits beyond the 64th, and non-canonical (overlong) forms — a
    /// decoded value always re-encodes to the same bytes.
    pub fn get_varint(&mut self) -> Result<u64, CodecError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                // Tenth byte may only contribute the 64th bit.
                return Err(CodecError::BadTag(byte));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                if byte == 0 && shift != 0 {
                    // Overlong: a trailing zero continuation byte.
                    return Err(CodecError::BadTag(byte));
                }
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads exactly `n` raw bytes (no length prefix) — used by framings
    /// whose lengths live elsewhere, like the module partition directory.
    pub fn get_slice(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Consumes and returns every remaining byte.
    pub fn rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }

    /// Reads a length-prefixed byte blob.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Reads a varint-length-prefixed byte blob.
    pub fn get_vbytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_varint()?;
        let len = usize::try_from(len).map_err(|_| CodecError::Truncated)?;
        self.take(len)
    }

    /// Reads a varint-length-prefixed UTF-8 string.
    pub fn get_vstr(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.get_vbytes()?).map_err(|_| CodecError::BadUtf8)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| CodecError::BadUtf8)
    }

    /// True when every byte was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_str("four");
        let buf = w.into_bytes();
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            assert_eq!(r.get_str(), Err(CodecError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn overlong_length_is_truncated_error() {
        // A length prefix promising 2^31 bytes in a 6-byte buffer.
        let mut buf = (1u32 << 31).to_le_bytes().to_vec();
        buf.extend_from_slice(b"ab");
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_bytes(), Err(CodecError::Truncated));
    }

    #[test]
    fn varint_roundtrips_and_is_compact() {
        let samples = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut w = ByteWriter::new();
        for &v in &samples {
            w.put_varint(v);
        }
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        for &v in &samples {
            assert_eq!(r.get_varint().unwrap(), v);
        }
        assert!(r.is_exhausted());
        // One byte for values under 128, never more than ten.
        let mut one = ByteWriter::new();
        one.put_varint(127);
        assert_eq!(one.len(), 1);
        let mut max = ByteWriter::new();
        max.put_varint(u64::MAX);
        assert_eq!(max.len(), 10);
    }

    #[test]
    fn varint_truncation_is_an_error() {
        let mut w = ByteWriter::new();
        w.put_varint(1 << 40);
        let buf = w.into_bytes();
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            assert_eq!(r.get_varint(), Err(CodecError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn varint_rejects_overlong_and_overflowing_encodings() {
        // 0 encoded in two bytes (non-canonical).
        let mut r = ByteReader::new(&[0x80, 0x00]);
        assert!(r.get_varint().is_err());
        // Eleven continuation bytes: bits beyond the 64th.
        let mut r = ByteReader::new(&[0xff; 11]);
        assert!(r.get_varint().is_err());
        // Tenth byte carrying more than the top bit.
        let mut bytes = vec![0xff; 9];
        bytes.push(0x02);
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_varint().is_err());
    }

    #[test]
    fn vbytes_and_vstr_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_vstr("héllo");
        w.put_vbytes(&[9, 8, 7]);
        let buf = w.into_bytes();
        // "héllo" is 6 bytes: 1-byte varint length instead of 4.
        assert_eq!(buf.len(), 1 + 6 + 1 + 3);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_vstr().unwrap(), "héllo");
        assert_eq!(r.get_vbytes().unwrap(), &[9, 8, 7]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn bad_utf8_is_detected() {
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xff, 0xfe]);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_str(), Err(CodecError::BadUtf8));
    }
}
