//! The versioned on-disk record format.
//!
//! Every cache entry is one file holding one record:
//!
//! ```text
//! magic    [u8; 4]   b"YST" + format version byte
//! ns_len   u32       namespace length
//! ns       [u8]      namespace bytes (ASCII, filename-safe)
//! key      u64       the content-address the entry was stored under
//! len      u64       payload length
//! payload  [u8]
//! checksum u64       FNV-1a of every preceding byte (the footer)
//! ```
//!
//! The checksum footer is written *last*, so a torn write (power loss,
//! `kill -9` mid-write on a filesystem that reorders, fault injection)
//! leaves a record whose footer cannot match — decoding reports
//! [`RecordError`] and the store treats the entry as a miss, never an
//! error. Bumping [`FORMAT_VERSION`] invalidates every existing entry
//! the same way: old records decode as `BadMagic` and are dropped as
//! misses, so a format change never needs a migration.

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::fnv64;

/// Current record format version. Bump on ANY layout change (record
/// framing or the payload layout of a namespace) — old entries then
/// degrade to misses instead of mis-decoding.
///
/// Version 2: namespace payloads moved from length-prefixed text fields
/// to the binary module format (`crate::module` — interned string table
/// plus tagged partitions, consumed zero-copy). Version-1 records
/// written by older builds decode as `BadMagic` and fall out as misses.
pub const FORMAT_VERSION: u8 = 2;

const MAGIC: [u8; 3] = *b"YST";

/// Why a record failed to decode. Every variant is handled identically
/// by the store — count `store.corruptions`, drop the entry, report a miss —
/// the distinction exists for tests and diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// Wrong magic bytes or format version.
    BadMagic,
    /// The record ended before its declared length (torn write).
    Truncated,
    /// The checksum footer did not match the record bytes.
    ChecksumMismatch,
    /// The record decoded but was stored under a different namespace or
    /// key than requested (index corruption or a renamed file).
    WrongAddress,
    /// A field inside the record failed to decode.
    Codec(CodecError),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::BadMagic => write!(f, "bad magic or format version"),
            RecordError::Truncated => write!(f, "record truncated"),
            RecordError::ChecksumMismatch => write!(f, "checksum mismatch"),
            RecordError::WrongAddress => write!(f, "record stored under a different address"),
            RecordError::Codec(e) => write!(f, "record field: {e}"),
        }
    }
}

impl std::error::Error for RecordError {}

impl From<CodecError> for RecordError {
    fn from(e: CodecError) -> Self {
        RecordError::Codec(e)
    }
}

/// Encodes one record (header + payload + checksum footer).
pub fn encode(namespace: &str, key: u64, payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(MAGIC[0]);
    w.put_u8(MAGIC[1]);
    w.put_u8(MAGIC[2]);
    w.put_u8(FORMAT_VERSION);
    w.put_str(namespace);
    w.put_u64(key);
    w.put_u64(payload.len() as u64);
    let mut bytes = w.into_bytes();
    bytes.extend_from_slice(payload);
    let checksum = fnv64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Decodes `bytes` zero-copy, verifying magic, framing, checksum, and
/// that the record was stored under `(namespace, key)`. The returned
/// payload is a borrow of `bytes` — validation happens once here, and
/// serving the hit costs no copy and no allocation.
pub fn decode_view<'a>(
    bytes: &'a [u8],
    namespace: &str,
    key: u64,
) -> Result<&'a [u8], RecordError> {
    if bytes.len() < 8 {
        return Err(RecordError::Truncated);
    }
    let (body, footer) = bytes.split_at(bytes.len() - 8);
    let declared = u64::from_le_bytes(footer.try_into().expect("8 bytes"));
    if fnv64(body) != declared {
        return Err(RecordError::ChecksumMismatch);
    }
    let mut r = ByteReader::new(body);
    let magic = [r.get_u8()?, r.get_u8()?, r.get_u8()?];
    let version = r.get_u8()?;
    if magic != MAGIC || version != FORMAT_VERSION {
        return Err(RecordError::BadMagic);
    }
    let ns = r.get_str()?;
    let stored_key = r.get_u64()?;
    let len = usize::try_from(r.get_u64()?).map_err(|_| RecordError::Truncated)?;
    let payload = r.get_slice(len).map_err(|_| RecordError::Truncated)?;
    if !r.is_exhausted() {
        return Err(RecordError::Truncated);
    }
    if ns != namespace || stored_key != key {
        return Err(RecordError::WrongAddress);
    }
    Ok(payload)
}

/// Owning variant of [`decode_view`] for callers that need the payload
/// to outlive the record bytes.
pub fn decode(bytes: &[u8], namespace: &str, key: u64) -> Result<Vec<u8>, RecordError> {
    decode_view(bytes, namespace, key).map(|p| p.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let bytes = encode("run", 0xabcd, b"artifact body");
        assert_eq!(decode(&bytes, "run", 0xabcd).unwrap(), b"artifact body");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let bytes = encode("parse", 0, b"");
        assert_eq!(decode(&bytes, "parse", 0).unwrap(), b"");
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode("run", 42, b"some payload bytes");
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut], "run", 42).is_err(),
                "undetected truncation at {cut}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = encode("run", 42, b"some payload bytes");
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(
                decode(&bad, "run", 42).is_err(),
                "undetected flip at byte {i}"
            );
        }
    }

    #[test]
    fn wrong_address_is_rejected() {
        let bytes = encode("run", 42, b"x");
        assert_eq!(decode(&bytes, "run", 43), Err(RecordError::WrongAddress));
        assert_eq!(decode(&bytes, "parse", 42), Err(RecordError::WrongAddress));
    }

    #[test]
    fn version_bump_invalidates() {
        let mut bytes = encode("run", 1, b"x");
        // Rewrite the version byte and fix up the checksum: a record from
        // a future (or past) format must decode as BadMagic.
        bytes[3] = FORMAT_VERSION + 1;
        let body_len = bytes.len() - 8;
        let sum = fnv64(&bytes[..body_len]);
        let len = bytes.len();
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode(&bytes, "run", 1), Err(RecordError::BadMagic));
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = encode("run", 1, b"x");
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(decode(&bytes, "run", 1).is_err());
    }
}
