//! The engine: the paper's Figure 5 `SubstituteHeader(sources, header)`
//! driver, plus the workflow integration of Figure 6.
//!
//! [`Engine::run`] is the one-shot entry point; it is a thin wrapper over
//! a single cold [`crate::Session`] run, so the one-shot and incremental
//! paths can never drift apart.

use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::time::Duration;

use yalla_cpp::loc::FileId;
use yalla_cpp::vfs::Vfs;
use yalla_cpp::CppError;

use crate::emit::{LIGHTWEIGHT_HEADER_NAME, WRAPPERS_FILE_NAME};
use crate::plan::Plan;
use crate::report::Report;
use crate::session::Session;

/// Errors the engine can return.
#[derive(Debug)]
pub enum YallaError {
    /// The frontend failed on the original sources.
    Cpp(CppError),
    /// The header to substitute was never included by the sources.
    HeaderNotIncluded(String),
    /// A source path was not found in the virtual file system.
    SourceNotFound(String),
    /// One or more source paths were not found in the virtual file system.
    /// Every missing path is reported at once, so a typo in source three
    /// does not hide a typo in source five.
    SourcesNotFound(Vec<String>),
    /// The run was cooperatively cancelled at a stage boundary (a newer
    /// edit superseded it). No partial artifact was published; the
    /// session's caches stay consistent and a retry picks up where the
    /// completed stages left off.
    Cancelled,
}

impl fmt::Display for YallaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            YallaError::Cpp(e) => write!(f, "frontend error: {e}"),
            YallaError::HeaderNotIncluded(h) => {
                write!(f, "header `{h}` is not included by the sources")
            }
            YallaError::SourceNotFound(s) => write!(f, "source file not found: {s}"),
            YallaError::SourcesNotFound(paths) => {
                write!(f, "source files not found: {}", paths.join(", "))
            }
            YallaError::Cancelled => write!(f, "run cancelled (superseded by a newer edit)"),
        }
    }
}

impl std::error::Error for YallaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            YallaError::Cpp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CppError> for YallaError {
    fn from(e: CppError) -> Self {
        YallaError::Cpp(e)
    }
}

/// Engine configuration — mirrors the tool's CLI (`yalla <sources>
/// --header <hdr>`).
#[derive(Debug, Clone)]
pub struct Options {
    /// Header to substitute, as written in the `#include` (e.g.
    /// `Kokkos_Core.hpp`).
    pub header: String,
    /// User source files; the first is the translation-unit root and all
    /// of them are rewritten.
    pub sources: Vec<String>,
    /// File name of the generated lightweight header.
    pub lightweight_name: String,
    /// File name of the generated wrappers file.
    pub wrappers_name: String,
    /// Predefined macros for preprocessing (like `-D`).
    pub defines: Vec<(String, String)>,
    /// Extra header symbols (fully qualified class or function keys, e.g.
    /// `Kokkos::View`) to forward declare even when the sources do not use
    /// them *yet*. This implements the paper's §6 plan of letting
    /// developers pre-declare everything they expect to need, so the tool
    /// does not have to re-run when the used-symbol set grows.
    pub extra_symbols: Vec<String>,
    /// Run the verification pass (on by default).
    pub verify: bool,
    /// Translation-unit roots to preprocess + parse, each as its own DAG
    /// node fanning out across the executor. Empty (the default) keeps
    /// the classic single-TU shape: only `sources[0]` roots a parse and
    /// every other source is a support file of that TU. Usage analysis
    /// unions every root's usage of the target header (in root order, so
    /// artifacts stay byte-identical at any worker count); a source that
    /// names a root is rewritten against its own TU, any other source
    /// against the primary root's.
    pub tu_roots: Vec<String>,
}

impl Options {
    /// The effective parse roots: `tu_roots` when set, else the classic
    /// single root `sources[0]`. The first entry is the *primary* root —
    /// the TU that must include the target header and that anchors
    /// analysis, verification, and the `Report`'s before/after stats.
    pub fn parse_roots(&self) -> Vec<String> {
        if self.tu_roots.is_empty() {
            self.sources.first().cloned().into_iter().collect()
        } else {
            self.tu_roots.clone()
        }
    }
}

impl Default for Options {
    fn default() -> Self {
        Options {
            header: String::new(),
            sources: Vec::new(),
            lightweight_name: LIGHTWEIGHT_HEADER_NAME.into(),
            wrappers_name: WRAPPERS_FILE_NAME.into(),
            defines: Vec::new(),
            extra_symbols: Vec::new(),
            verify: true,
            tu_roots: Vec::new(),
        }
    }
}

/// Wall-clock timings of the engine phases (the paper's Figure 10 "tool
/// time" breakdown). Each field is the measured duration of the matching
/// `engine/*` span — the pipeline closes a [`yalla_obs::Span`] per phase
/// and stores what it returns, so the Report and the Chrome trace can never
/// disagree. A phase served from a session's artifact cache reports
/// [`Duration::ZERO`] (never a stale measurement from an earlier run); the
/// trace marks it with an `<phase> (cached)` instant event instead.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// Preprocess + parse of the original TU.
    pub parse: Duration,
    /// Symbol table + usage analysis.
    pub analyze: Duration,
    /// Plan building (wrapper synthesis, functors).
    pub plan: Duration,
    /// Emission + source rewriting.
    pub generate: Duration,
    /// Verification pass.
    pub verify: Duration,
}

impl Timings {
    /// Total engine time.
    pub fn total(&self) -> Duration {
        self.parse + self.analyze + self.plan + self.generate + self.verify
    }
}

/// Everything a substitution run produces.
#[derive(Debug)]
pub struct SubstitutionResult {
    /// The generated lightweight header text.
    pub lightweight_header: String,
    /// The generated wrappers file text.
    pub wrappers_file: String,
    /// Rewritten source texts by original path.
    pub rewritten_sources: BTreeMap<String, String>,
    /// The plan that produced the artifacts.
    pub plan: Plan,
    /// Summary report (Table 3 stats, verification outcome).
    pub report: Report,
    /// Phase timings.
    pub timings: Timings,
}

impl SubstitutionResult {
    /// Installs the generated artifacts into a file system (Figure 6 step
    /// ②): rewritten sources replace the originals, and the lightweight
    /// header + wrappers file are added. Returns the wrappers file path.
    pub fn install_into(&self, vfs: &mut Vfs, options: &Options) -> String {
        for (path, text) in &self.rewritten_sources {
            vfs.add_file(path, text.clone());
        }
        vfs.add_file(&options.lightweight_name, self.lightweight_header.clone());
        vfs.add_file(&options.wrappers_name, self.wrappers_file.clone());
        options.wrappers_name.clone()
    }
}

/// The Header Substitution engine.
#[derive(Debug, Clone)]
pub struct Engine {
    options: Options,
}

impl Engine {
    /// Creates an engine with the given options.
    pub fn new(options: Options) -> Self {
        Engine { options }
    }

    /// The engine's options.
    pub fn options(&self) -> &Options {
        &self.options
    }

    /// Runs Header Substitution (Figure 5) against `vfs`.
    ///
    /// This is a single cold run of the staged pipeline — equivalent to
    /// `Session::new(options, vfs.clone()).rerun()` with the caches thrown
    /// away afterwards. Callers that re-run after edits should hold a
    /// [`Session`] instead.
    ///
    /// # Errors
    ///
    /// Fails when the sources do not parse, a source path is missing, or
    /// the header is never included. Unsupported constructs (nested
    /// classes, failed deductions) do *not* fail the run; they surface as
    /// [`crate::plan::Diagnostic`]s in the report and the affected symbol
    /// keeps its original form.
    pub fn run(&self, vfs: &Vfs) -> Result<SubstitutionResult, YallaError> {
        Session::new(self.options.clone(), vfs.clone())
            .rerun()
            .map(|run| run.result)
    }
}

/// Files reachable from `root` in the include graph (including `root`).
pub(crate) fn reachable_from(root: FileId, edges: &[(FileId, FileId)]) -> HashSet<FileId> {
    let mut reach: HashSet<FileId> = HashSet::new();
    let mut stack = vec![root];
    while let Some(f) = stack.pop() {
        if !reach.insert(f) {
            continue;
        }
        for (from, to) in edges {
            if *from == f && !reach.contains(to) {
                stack.push(*to);
            }
        }
    }
    reach
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kokkos_vfs() -> Vfs {
        let mut vfs = Vfs::new();
        // Filler internals standing in for the real header's bulk (the
        // actual Kokkos_Core.hpp expands to ~111k lines; see Table 3).
        let mut bulk = String::from("#pragma once\nnamespace Kokkos { namespace Impl {\n");
        for i in 0..200 {
            bulk.push_str(&format!(
                "inline int detail_fn_{i}(int x) {{ return x + {i}; }}\n"
            ));
        }
        bulk.push_str("} }\n");
        vfs.add_file("Kokkos_Bulk.hpp", bulk);
        vfs.add_file(
            "Kokkos_Core.hpp",
            r#"
#pragma once
#include <Kokkos_Impl.hpp>
#include <Kokkos_Bulk.hpp>
namespace Kokkos {
  class OpenMP;
  class LayoutRight {};
  template<class D, class L> class View {
  public:
    View();
    int& operator()(int i, int j);
    int extent(int d) const;
  };
  template<class S> class TeamPolicy {
  public:
    using member_type = Impl::HostThreadTeamMember<S>;
  };
  template<class M> Impl::TeamThreadRangeBoundariesStruct TeamThreadRange(M& m, int n);
  template<class R, class F> void parallel_for(R range, F functor);
}
"#,
        );
        vfs.add_file(
            "Kokkos_Impl.hpp",
            r#"
#pragma once
namespace Kokkos { namespace Impl {
  struct TeamThreadRangeBoundariesStruct { int lo; int hi; };
  template<class P> class HostThreadTeamMember {
  public:
    int league_rank() const;
  };
} }
"#,
        );
        vfs.add_file(
            "functor.hpp",
            r#"#pragma once
#include <Kokkos_Core.hpp>
using sp_t = Kokkos::OpenMP;
using member_t = Kokkos::TeamPolicy<sp_t>::member_type;
struct add_y {
  int y;
  Kokkos::View<int**, Kokkos::LayoutRight> x;
  void operator()(member_t &m);
};
"#,
        );
        vfs.add_file(
            "kernel.cpp",
            r#"#include "functor.hpp"
void add_y::operator()(member_t &m) {
  int j = m.league_rank();
  Kokkos::parallel_for(
    Kokkos::TeamThreadRange(m, 5),
    [&](int i) { x(j, i) += y; });
}
"#,
        );
        vfs
    }

    fn run_kokkos() -> SubstitutionResult {
        Engine::new(Options {
            header: "Kokkos_Core.hpp".into(),
            sources: vec!["kernel.cpp".into(), "functor.hpp".into()],
            ..Options::default()
        })
        .run(&kokkos_vfs())
        .unwrap()
    }

    #[test]
    fn figure_4a_lightweight_header_contents() {
        let r = run_kokkos();
        let lw = &r.lightweight_header;
        // Forward declared classes (paper Fig. 4a lines 2–7).
        assert!(lw.contains("class OpenMP;"), "{lw}");
        assert!(lw.contains("class LayoutRight;"), "{lw}");
        assert!(lw.contains("class View;"), "{lw}");
        assert!(lw.contains("class HostThreadTeamMember;"), "{lw}");
        assert!(
            lw.contains("struct TeamThreadRangeBoundariesStruct;"),
            "{lw}"
        );
        // Function wrappers (lines 10–16).
        assert!(lw.contains("TeamThreadRange_w"), "{lw}");
        assert!(lw.contains("parallel_for_w"), "{lw}");
        // Method wrappers (lines 18–21).
        assert!(
            lw.contains("league_rank(ObjectT& obj)") || lw.contains("league_rank(ObjectT&"),
            "{lw}"
        );
        assert!(lw.contains("paren_operator"), "{lw}");
        // Functor replacing the lambda (lines 23–28).
        assert!(lw.contains("struct yalla_functor_0"), "{lw}");
        assert!(lw.contains("void operator()(int i) const"), "{lw}");
    }

    #[test]
    fn figure_4b_source_rewrites() {
        let r = run_kokkos();
        let functor_hpp = &r.rewritten_sources["functor.hpp"];
        // Include swapped (Fig. 4b line 3).
        assert!(
            functor_hpp.contains("#include \"yalla_lightweight.hpp\""),
            "{functor_hpp}"
        );
        assert!(!functor_hpp.contains("Kokkos_Core.hpp"), "{functor_hpp}");
        // member_t re-aliased to the non-nested class (line 8).
        assert!(
            functor_hpp.contains("HostThreadTeamMember"),
            "{functor_hpp}"
        );
        // Field pointerized (line 12).
        assert!(
            functor_hpp.contains("Kokkos::View<int**, Kokkos::LayoutRight>* x;"),
            "{functor_hpp}"
        );
        let kernel = &r.rewritten_sources["kernel.cpp"];
        // Method call through wrapper (line 18).
        assert!(kernel.contains("league_rank(m)"), "{kernel}");
        // Wrapped function calls (lines 19–21).
        assert!(kernel.contains("parallel_for_w("), "{kernel}");
        assert!(kernel.contains("TeamThreadRange_w(m, 5)"), "{kernel}");
        // Lambda replaced by functor construction (line 21).
        assert!(kernel.contains("yalla_functor_0{x, j, y}"), "{kernel}");
    }

    #[test]
    fn wrappers_file_structure() {
        let r = run_kokkos();
        let wf = &r.wrappers_file;
        assert!(wf.contains("#include <Kokkos_Core.hpp>"), "{wf}");
        assert!(wf.contains("#include \"yalla_lightweight.hpp\""), "{wf}");
        // Heap allocation for incomplete return (paper §3.2.2).
        assert!(
            wf.contains("return new Kokkos::Impl::TeamThreadRangeBoundariesStruct"),
            "{wf}"
        );
        // Explicit instantiations (paper §3.4).
        assert!(wf.contains("template "), "{wf}");
        assert!(
            wf.contains("yalla_functor_0"),
            "lambda functor must appear in an explicit instantiation: {wf}"
        );
    }

    #[test]
    fn verification_passes_on_figure_3() {
        let r = run_kokkos();
        assert!(
            r.report.verification.passed(),
            "verification failed: parse={} wrappers={} violations={:?}\n--- lightweight:\n{}\n--- kernel:\n{}\n--- functor:\n{}",
            r.report.verification.sources_parse,
            r.report.verification.wrappers_parse,
            r.report.verification.violations,
            r.lightweight_header,
            r.rewritten_sources["kernel.cpp"],
            r.rewritten_sources["functor.hpp"],
        );
    }

    #[test]
    fn table_3_stats_shrink() {
        let r = run_kokkos();
        assert!(r.report.before.loc > r.report.after.loc, "{:?}", r.report);
        assert!(r.report.before.headers > r.report.after.headers);
        assert!(r.report.loc_reduction() > 2.0);
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = Engine::new(Options {
            header: "NotThere.hpp".into(),
            sources: vec!["kernel.cpp".into()],
            ..Options::default()
        })
        .run(&kokkos_vfs())
        .unwrap_err();
        assert!(matches!(err, YallaError::HeaderNotIncluded(_)));
    }

    #[test]
    fn missing_source_is_an_error() {
        let err = Engine::new(Options {
            header: "Kokkos_Core.hpp".into(),
            sources: vec!["nope.cpp".into()],
            ..Options::default()
        })
        .run(&kokkos_vfs())
        .unwrap_err();
        assert!(matches!(err, YallaError::SourcesNotFound(ref p) if p == &["nope.cpp"]));
    }

    #[test]
    fn all_missing_sources_reported_together() {
        let err = Engine::new(Options {
            header: "Kokkos_Core.hpp".into(),
            sources: vec![
                "kernel.cpp".into(),
                "nope.cpp".into(),
                "functor.hpp".into(),
                "also_nope.cpp".into(),
            ],
            ..Options::default()
        })
        .run(&kokkos_vfs())
        .unwrap_err();
        match err {
            YallaError::SourcesNotFound(paths) => {
                assert_eq!(paths, vec!["nope.cpp", "also_nope.cpp"]);
            }
            other => panic!("expected SourcesNotFound, got {other}"),
        }
        // The Display form names every missing path.
        let err = Engine::new(Options {
            header: "Kokkos_Core.hpp".into(),
            sources: vec!["nope.cpp".into(), "also_nope.cpp".into()],
            ..Options::default()
        })
        .run(&kokkos_vfs())
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("nope.cpp") && msg.contains("also_nope.cpp"),
            "{msg}"
        );
    }

    #[test]
    fn empty_sources_is_an_error() {
        let err = Engine::new(Options {
            header: "Kokkos_Core.hpp".into(),
            ..Options::default()
        })
        .run(&kokkos_vfs())
        .unwrap_err();
        assert!(matches!(err, YallaError::SourceNotFound(_)));
    }

    #[test]
    fn reachability_includes_transitive() {
        let edges = vec![
            (FileId(0), FileId(1)),
            (FileId(1), FileId(2)),
            (FileId(3), FileId(4)),
        ];
        let reach = reachable_from(FileId(0), &edges);
        assert!(reach.contains(&FileId(0)));
        assert!(reach.contains(&FileId(1)));
        assert!(reach.contains(&FileId(2)));
        assert!(!reach.contains(&FileId(4)));
    }

    #[test]
    fn timings_are_recorded() {
        let r = run_kokkos();
        assert!(r.timings.total() > Duration::ZERO);
    }

    #[test]
    fn install_into_swaps_files() {
        let r = run_kokkos();
        let opts = Options {
            header: "Kokkos_Core.hpp".into(),
            sources: vec!["kernel.cpp".into(), "functor.hpp".into()],
            ..Options::default()
        };
        let mut vfs = kokkos_vfs();
        let wrappers = r.install_into(&mut vfs, &opts);
        assert_eq!(wrappers, "yalla_wrappers.cpp");
        assert!(vfs.lookup("yalla_lightweight.hpp").is_some());
        assert!(vfs
            .text(vfs.lookup("kernel.cpp").unwrap())
            .contains("parallel_for_w"));
    }
}

#[cfg(test)]
mod extra_symbol_tests {
    use super::*;

    #[test]
    fn pre_declared_symbols_enter_the_lightweight_header() {
        let mut vfs = Vfs::new();
        vfs.add_file(
            "lib.hpp",
            "namespace L { class Used { public: int id() const; }; class Unused; template<class T> T helper(T v); }",
        );
        vfs.add_file(
            "main.cpp",
            "#include \"lib.hpp\"\nint f(L::Used& u) { return u.id(); }\n",
        );
        let result = Engine::new(Options {
            header: "lib.hpp".into(),
            sources: vec!["main.cpp".into()],
            extra_symbols: vec!["L::Unused".into(), "L::helper".into()],
            ..Options::default()
        })
        .run(&vfs)
        .unwrap();
        let lw = &result.lightweight_header;
        assert!(lw.contains("class Unused;"), "{lw}");
        assert!(lw.contains("helper"), "{lw}");
        assert!(result.report.verification.passed());
    }

    #[test]
    fn unknown_pre_declared_symbol_is_a_diagnostic_not_an_error() {
        let mut vfs = Vfs::new();
        vfs.add_file(
            "lib.hpp",
            "namespace L { class C { public: int id() const; }; }",
        );
        vfs.add_file(
            "main.cpp",
            "#include \"lib.hpp\"\nint f(L::C& c) { return c.id(); }\n",
        );
        let result = Engine::new(Options {
            header: "lib.hpp".into(),
            sources: vec!["main.cpp".into()],
            extra_symbols: vec!["L::Nope".into()],
            ..Options::default()
        })
        .run(&vfs)
        .unwrap();
        assert!(result
            .plan
            .diagnostics
            .iter()
            .any(|d| d.message.contains("L::Nope")));
    }
}

/// The result of substituting several headers in sequence (the paper's §6
/// plan to "apply Header Substitution to entire projects").
#[derive(Debug)]
pub struct MultiSubstitutionResult {
    /// Per-header substitution results, in application order. Each step's
    /// rewritten sources are the input of the next.
    pub steps: Vec<(String, SubstitutionResult)>,
    /// Final rewritten source texts (after the last step).
    pub rewritten_sources: BTreeMap<String, String>,
    /// Names of every generated artifact (lightweight headers + wrapper
    /// files), in creation order.
    pub artifacts: Vec<String>,
}

impl MultiSubstitutionResult {
    /// Installs all artifacts and the final sources into `vfs`. Returns the
    /// wrapper-file names (each must be compiled once, Figure 6 step ③).
    pub fn install_into(&self, vfs: &mut Vfs) -> Vec<String> {
        let mut wrappers = Vec::new();
        // `artifacts` alternates lightweight header / wrappers file, one
        // pair per step.
        for (i, (_, step)) in self.steps.iter().enumerate() {
            let lw_name = &self.artifacts[i * 2];
            let wr_name = &self.artifacts[i * 2 + 1];
            vfs.add_file(lw_name, step.lightweight_header.clone());
            vfs.add_file(wr_name, step.wrappers_file.clone());
            wrappers.push(wr_name.clone());
        }
        for (path, text) in &self.rewritten_sources {
            vfs.add_file(path, text.clone());
        }
        wrappers
    }
}

/// Substitutes each of `headers` in `sources`, sequentially: the rewritten
/// output of one substitution is the input of the next, and each header
/// gets its own lightweight header + wrappers file
/// (`yalla_lightweight_<i>.hpp` / `yalla_wrappers_<i>.cpp`).
///
/// # Errors
///
/// Fails if any step fails. A header that is no longer included by the
/// (already rewritten) sources is skipped with a diagnostic in that step's
/// predecessor — callers see it simply missing from `steps`.
pub fn substitute_headers(
    vfs: &Vfs,
    headers: &[String],
    sources: &[String],
) -> Result<MultiSubstitutionResult, YallaError> {
    let mut working = vfs.clone();
    let mut steps = Vec::new();
    let mut artifacts = Vec::new();
    let mut rewritten: BTreeMap<String, String> = BTreeMap::new();
    for (i, header) in headers.iter().enumerate() {
        let options = Options {
            header: header.clone(),
            sources: sources.to_vec(),
            lightweight_name: format!("yalla_lightweight_{i}.hpp"),
            wrappers_name: format!("yalla_wrappers_{i}.cpp"),
            ..Options::default()
        };
        let result = match Engine::new(options.clone()).run(&working) {
            Ok(r) => r,
            Err(YallaError::HeaderNotIncluded(_)) => continue,
            Err(e) => return Err(e),
        };
        result.install_into(&mut working, &options);
        for (path, text) in &result.rewritten_sources {
            rewritten.insert(path.clone(), text.clone());
        }
        artifacts.push(options.lightweight_name.clone());
        artifacts.push(options.wrappers_name.clone());
        steps.push((header.clone(), result));
    }
    Ok(MultiSubstitutionResult {
        steps,
        rewritten_sources: rewritten,
        artifacts,
    })
}

#[cfg(test)]
mod multi_tests {
    use super::*;
    use yalla_cpp::frontend::Frontend;

    fn two_lib_vfs() -> Vfs {
        let mut vfs = Vfs::new();
        vfs.add_file(
            "liba.hpp",
            "#pragma once\nnamespace a { class Alpha { public: int get() const; }; }\n",
        );
        vfs.add_file(
            "libb.hpp",
            "#pragma once\nnamespace b { class Beta { public: int put(int v); }; }\n",
        );
        vfs.add_file(
            "main.cpp",
            "#include <liba.hpp>\n#include <libb.hpp>\nint go(a::Alpha& x, b::Beta& y) { return y.put(x.get()); }\n",
        );
        vfs
    }

    #[test]
    fn two_headers_substituted_in_sequence() {
        let vfs = two_lib_vfs();
        let multi = substitute_headers(
            &vfs,
            &["liba.hpp".into(), "libb.hpp".into()],
            &["main.cpp".into()],
        )
        .unwrap();
        assert_eq!(multi.steps.len(), 2);
        let final_main = &multi.rewritten_sources["main.cpp"];
        assert!(
            final_main.contains("yalla_lightweight_0.hpp"),
            "{final_main}"
        );
        assert!(
            final_main.contains("yalla_lightweight_1.hpp"),
            "{final_main}"
        );
        assert!(!final_main.contains("liba.hpp"));
        assert!(!final_main.contains("libb.hpp"));
        // Both method calls rewritten through wrappers.
        assert!(final_main.contains("get(x)"), "{final_main}");
        assert!(final_main.contains("put(y"), "{final_main}");
        // Each step verified.
        for (h, step) in &multi.steps {
            assert!(step.report.verification.passed(), "{h}");
        }
    }

    #[test]
    fn missing_header_is_skipped() {
        let vfs = two_lib_vfs();
        let multi = substitute_headers(
            &vfs,
            &[
                "liba.hpp".into(),
                "not_included.hpp".into(),
                "libb.hpp".into(),
            ],
            &["main.cpp".into()],
        );
        // not_included.hpp is not in the VFS at all → engine reports
        // HeaderNotIncluded → skipped.
        let multi = multi.unwrap();
        assert_eq!(multi.steps.len(), 2);
    }

    #[test]
    fn install_into_provides_all_artifacts() {
        let vfs = two_lib_vfs();
        let multi = substitute_headers(
            &vfs,
            &["liba.hpp".into(), "libb.hpp".into()],
            &["main.cpp".into()],
        )
        .unwrap();
        let mut out = vfs.clone();
        let wrappers = multi.install_into(&mut out);
        assert_eq!(
            wrappers,
            vec!["yalla_wrappers_0.cpp", "yalla_wrappers_1.cpp"]
        );
        // Substituted TU parses.
        let fe = Frontend::new(out);
        fe.parse_translation_unit("main.cpp").unwrap();
    }
}
