//! Header Substitution — the YALLA engine (the paper's primary
//! contribution), reproduced in Rust.
//!
//! Given a set of C++ source files and one expensive header they include,
//! the engine (paper, Figure 5):
//!
//! 1. analyzes which classes, functions, methods, fields, enums and
//!    lambdas the sources actually use from the header ([`yalla_analysis`]),
//! 2. generates a *lightweight header* containing forward declarations of
//!    the used classes plus declarations of *function wrappers*, *method
//!    wrappers* and lambda-replacement *functors* (§3.2, §3.4),
//! 3. rewrites the sources: the `#include` is swapped for the lightweight
//!    header, by-value uses of now-incomplete classes become pointers, and
//!    call sites are redirected to the wrappers (§3.3),
//! 4. emits a *wrappers file* holding the wrapper definitions and explicit
//!    template instantiations — the only translation unit that still
//!    includes the expensive header (§3.4, Figure 6 step ③),
//! 5. verifies the transformed program still parses and respects C++'s
//!    incomplete-type rules (the paper's "guaranteeing that the code still
//!    compiles").
//!
//! # Quick start
//!
//! ```
//! use yalla_core::{Engine, Options};
//! use yalla_cpp::vfs::Vfs;
//!
//! let mut vfs = Vfs::new();
//! vfs.add_file("lib.hpp", "namespace K { class Widget { public: int id() const; }; }\n");
//! vfs.add_file(
//!     "main.cpp",
//!     "#include \"lib.hpp\"\nint use(K::Widget& w) { return w.id(); }\n",
//! );
//! let result = Engine::new(Options {
//!     header: "lib.hpp".into(),
//!     sources: vec!["main.cpp".into()],
//!     ..Options::default()
//! })
//! .run(&vfs)
//! .unwrap();
//! assert!(result.lightweight_header.contains("class Widget;"));
//! assert!(result.rewritten_sources["main.cpp"].contains("yalla_lightweight.hpp"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod emit;
pub mod engine;
pub mod fingerprint;
pub mod lambda;
pub mod persist;
pub mod plan;
pub mod report;
pub mod rewrite;
pub mod rules;
pub mod serve;
pub mod session;
pub mod verify;
pub mod wrappers;

pub use engine::{
    substitute_headers, Engine, MultiSubstitutionResult, Options, SubstitutionResult, Timings,
    YallaError,
};
pub use plan::{Diagnostic, DiagnosticKind, Plan};
pub use report::Report;
pub use rules::{transformation_for, SymbolCategory, Transformation};
pub use session::{CacheLookup, Session, SessionRun, Stage, StageOutcome};
