//! Persistent, incremental Header Substitution sessions.
//!
//! [`crate::Engine::run`] is one-shot: every invocation re-preprocesses,
//! re-parses and re-analyzes everything. A [`Session`] keeps the pipeline's
//! intermediate artifacts alive across runs and recomputes only the stages
//! whose *input keys* changed, turning the tool itself into the steady-state
//! loop the paper measures (Figure 6: after the initial build, only the
//! cheap step ④ re-runs).
//!
//! The pipeline is an explicit stage DAG, scheduled on a
//! [`yalla_exec::Executor`] ([`Session::rerun_on`]); [`Session::rerun`]
//! uses the process-wide pool sized by `YALLA_WORKERS`. Each stage is
//! memoized behind a content-addressed key:
//!
//! ```text
//! parse ──► analyze ──► plan ──► emit ────────┐
//!   │          │          └────► rewrite ─────┼──► verify
//!   └──────────┴───(per-source, parallel)─────┘
//! ```
//!
//! | stage   | key                                                        |
//! |---------|------------------------------------------------------------|
//! | parse   | `(main path, defines)` validated against the include closure's content hashes ([`yalla_cpp::cache::ParseCache`]) |
//! | analyze | closure hash + header + sources + `extra_symbols`          |
//! | plan    | usage fingerprint ([`crate::fingerprint`]) + pre-declare diagnostics |
//! | emit    | plan key                                                   |
//! | rewrite | per source: file hash + reachable source hashes + plan key |
//! | verify  | closure hash + emitted artifacts + rewritten source hashes |
//!
//! Before building the DAG, a *warm pre-pass* walks the key chain with
//! cheap hashing only ([`yalla_cpp::cache::ParseCache::probe`], then slot
//! key comparisons): every stage proven warm becomes a
//! [`yalla_exec::Dag::cached`] node that completes inline without ever
//! occupying a worker, so a fully warm rerun schedules nothing at all.
//! Stages whose keys cannot be proven (a predecessor must recompute
//! first) become live nodes that compute their key from their
//! predecessors' outputs and refresh their slot, so cache hits *behind*
//! an edited stage are still honored at run time. An edit that does not
//! grow the used-symbol set leaves the usage fingerprint unchanged, so
//! plan and emit are skipped entirely — the paper's §6 "no re-run
//! needed" claim, which `extra_symbols` extends to future symbols.
//! Independent per-source rewrites are separate DAG nodes and fan out
//! across the pool. Every stage reports hits/misses/invalidations to
//! [`yalla_obs`] under `cache.<stage>.*`.
//!
//! Artifacts are byte-identical at every worker count: stage closures
//! are pure functions of their memoized inputs, per-source rewrites are
//! independent, and the result map is assembled in source order — the
//! executor only changes *when* a node runs, never what it computes.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use yalla_analysis::symbols::SymbolTable;
use yalla_analysis::usage::UsageReport;
use yalla_cpp::cache::{CachedParse, ParseCache};
use yalla_cpp::hash::{self, Fnv64};
use yalla_cpp::loc::FileId;
use yalla_cpp::vfs::Vfs;
use yalla_cpp::ParsedTu;
use yalla_exec::{CancelToken, Dag, Executor, Priority};
use yalla_store::{Store, NS_RUN};

pub use yalla_cpp::cache::CacheLookup;

use crate::emit;
use crate::engine::{Options, SubstitutionResult, Timings, YallaError};
use crate::fingerprint::usage_fingerprint;
use crate::persist;
use crate::plan::{Diagnostic, DiagnosticKind, Plan};
use crate::report::{Report, TuStats, Verification};
use crate::rewrite::{rewrite_file, Transformer};
use crate::verify::verify;

/// The engine's pipeline stages, in dependency order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Preprocess + parse the translation unit.
    Parse,
    /// Symbol table, usage analysis, pre-declared symbols.
    Analyze,
    /// Plan construction (wrappers, functors, forward declarations).
    Plan,
    /// Lightweight header + wrappers file emission.
    Emit,
    /// Per-source rewriting.
    Rewrite,
    /// Verification + after-statistics.
    Verify,
}

impl Stage {
    /// Stable lowercase label (used in metric names and CLI output).
    pub fn label(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Analyze => "analyze",
            Stage::Plan => "plan",
            Stage::Emit => "emit",
            Stage::Rewrite => "rewrite",
            Stage::Verify => "verify",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What happened to one stage during a rerun.
#[derive(Debug, Clone, Copy)]
pub struct StageOutcome {
    /// Which stage.
    pub stage: Stage,
    /// Cache hit, miss, or invalidation. For the rewrite stage this is the
    /// aggregate over all sources (a hit only when *every* source was
    /// served from cache).
    pub lookup: CacheLookup,
    /// Time spent recomputing ([`Duration::ZERO`] on a hit — the cached
    /// artifact was reused, so no stale duration is reported). For the
    /// rewrite stage this is the *sum* over recomputed sources, i.e. work
    /// time, not wall time — the sources rewrite concurrently.
    pub duration: Duration,
}

/// Everything one [`Session::rerun`] produced.
#[derive(Debug)]
pub struct SessionRun {
    /// The substitution result, identical in shape to what
    /// [`crate::Engine::run`] returns. Timings of cached stages are zero.
    pub result: SubstitutionResult,
    /// Per-stage cache outcomes, in pipeline order.
    pub stages: Vec<StageOutcome>,
    /// Translation units re-parsed during this rerun (0 on a warm no-op
    /// rerun; with multiple `tu_roots`, every root whose include closure
    /// changed counts).
    pub files_reparsed: usize,
    /// Source rewrites recomputed during this rerun.
    pub rewrites_recomputed: usize,
    /// Source rewrites served from cache.
    pub rewrites_cached: usize,
    /// Longest single-root parse this rerun (zero when every root hit).
    /// With many `tu_roots` this is the parse stage's critical path: the
    /// floor any worker count must still pay, which the `mega` bench
    /// uses to model parse scaling independently of host core count.
    pub parse_longest: Duration,
}

impl SessionRun {
    /// True when every stage was served from cache (a no-op rerun).
    pub fn fully_cached(&self) -> bool {
        self.stages.iter().all(|s| s.lookup.is_hit())
    }

    /// The outcome recorded for `stage`.
    pub fn outcome(&self, stage: Stage) -> CacheLookup {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| s.lookup)
            .expect("all stages recorded")
    }

    /// One-line summary (`parse=hit analyze=hit ... [2 reparsed]`), used
    /// by `yalla --iterate`.
    pub fn summary_line(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{}={}", s.stage, s.lookup.label()));
        }
        out.push_str(&format!(
            "  ({} reparsed, {} rewritten, {:.1} ms)",
            self.files_reparsed,
            self.rewrites_recomputed,
            self.result.timings.total().as_secs_f64() * 1e3,
        ));
        out
    }
}

/// The analyze stage's artifact: everything derived from the parsed TU
/// that the plan and rewrite stages consume.
#[derive(Debug)]
pub struct AnalysisArtifact {
    /// Symbol table of the whole TU.
    pub table: SymbolTable,
    /// Usage of the target header by the sources, with pre-declared
    /// symbols already merged in.
    pub usage: UsageReport,
    /// Diagnostics produced while resolving `extra_symbols`.
    pub predeclare_diags: Vec<String>,
    /// Files belonging to the substituted header (itself + transitive
    /// includes).
    pub target_files: HashSet<FileId>,
    /// The user source files.
    pub source_files: HashSet<FileId>,
    /// Fingerprint of the plan-relevant inputs
    /// ([`crate::fingerprint::usage_fingerprint`]).
    pub usage_fingerprint: u64,
}

#[derive(Debug, Clone)]
struct EmitArtifact {
    lightweight: String,
    wrappers: String,
}

#[derive(Debug, Clone)]
struct VerifyArtifact {
    verification: Verification,
    after: Option<TuStats>,
}

#[derive(Debug)]
struct Slot<T> {
    key: u64,
    artifact: T,
}

/// A memoized stage slot shared with DAG node closures. The mutex is
/// never held across a stage computation — only for the key comparison
/// and the artifact swap — and distinct stages own distinct slots, so
/// nodes never contend.
type SharedSlot<T> = Mutex<Option<Slot<Arc<T>>>>;

/// The cached artifact, if `key` matches the slot's current key.
fn slot_hit<T>(slot: &SharedSlot<T>, key: u64) -> Option<Arc<T>> {
    slot.lock()
        .expect("stage slot lock")
        .as_ref()
        .filter(|s| s.key == key)
        .map(|s| Arc::clone(&s.artifact))
}

/// Refreshes a memoized stage slot: reuse when the key matches, otherwise
/// recompute (without holding the lock) and replace.
fn refresh<T>(
    slot: &SharedSlot<T>,
    key: u64,
    compute: impl FnOnce() -> Result<T, YallaError>,
) -> Result<(Arc<T>, CacheLookup), YallaError> {
    if let Some(artifact) = slot_hit(slot, key) {
        return Ok((artifact, CacheLookup::Hit));
    }
    let stale = slot.lock().expect("stage slot lock").is_some();
    let artifact = Arc::new(compute()?);
    *slot.lock().expect("stage slot lock") = Some(Slot {
        key,
        artifact: Arc::clone(&artifact),
    });
    Ok((
        artifact,
        if stale {
            CacheLookup::Invalidated
        } else {
            CacheLookup::Miss
        },
    ))
}

/// Bumps `cache.<stage>.<outcome>` (and, when `totals`, the global
/// `cache.hits`/`cache.misses`/`cache.invalidations` the parse cache
/// already maintains for itself).
fn note(stage: Stage, lookup: CacheLookup, totals: bool) {
    use yalla_obs::metrics::names;
    let outcome = match lookup {
        CacheLookup::Hit => "hits",
        CacheLookup::Miss | CacheLookup::Invalidated => "misses",
    };
    yalla_obs::count(&names::stage_cache(stage.label(), outcome), 1);
    if lookup == CacheLookup::Invalidated {
        yalla_obs::count(&names::stage_cache(stage.label(), "invalidations"), 1);
    }
    if totals {
        match lookup {
            CacheLookup::Hit => yalla_obs::count(names::CACHE_HITS, 1),
            CacheLookup::Miss => yalla_obs::count(names::CACHE_MISSES, 1),
            CacheLookup::Invalidated => {
                yalla_obs::count(names::CACHE_MISSES, 1);
                yalla_obs::count(names::CACHE_INVALIDATIONS, 1);
            }
        }
    }
}

// ---- stage keys (pure hashing; shared by the warm pre-pass and nodes) ----

/// Content address of the whole run's parse inputs: a single root's
/// closure hash passes through unchanged (so existing single-TU disk
/// keys stay valid), multiple roots fold in root order.
fn combined_closure_hash(hashes: &[u64]) -> u64 {
    match hashes {
        [one] => *one,
        many => {
            let mut h = Fnv64::new();
            for c in many {
                h.write_u64(*c);
            }
            h.finish()
        }
    }
}

fn analyze_key_of(closure_hash: u64, opts: &Options) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(closure_hash);
    h.write_str(&opts.header);
    for s in &opts.sources {
        h.write_str(s);
    }
    for e in &opts.extra_symbols {
        h.write_str(e);
    }
    for r in &opts.tu_roots {
        h.write_str(r);
    }
    h.finish()
}

fn plan_key_of(analysis: &AnalysisArtifact) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(analysis.usage_fingerprint);
    for d in &analysis.predeclare_diags {
        h.write_str(d);
    }
    h.finish()
}

/// A source's rewrite depends on its own text, the text of every *source*
/// file it transitively includes (type information flows along user
/// includes), and the plan.
fn rewrite_key_of(
    vfs: &Vfs,
    parsed: &ParsedTu,
    analysis: &AnalysisArtifact,
    plan_key: u64,
    source: &str,
) -> u64 {
    let id = vfs.lookup(source).expect("sources validated");
    let mut h = Fnv64::new();
    h.write_u64(plan_key);
    let mut reach: Vec<FileId> = crate::engine::reachable_from(id, &parsed.stats.include_edges)
        .into_iter()
        .filter(|f| analysis.source_files.contains(f))
        .collect();
    reach.sort_by_key(|f| f.0);
    if !reach.contains(&id) {
        reach.push(id); // sources absent from the TU still rewrite
    }
    for f in reach {
        h.write_str(vfs.path(f));
        h.write_u64(vfs.file_hash(f));
    }
    h.finish()
}

fn verify_key_of(
    closure_hash: u64,
    plan_key: u64,
    opts: &Options,
    emit_art: &EmitArtifact,
    rewritten: &BTreeMap<String, Arc<String>>,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(closure_hash);
    h.write_u64(plan_key);
    h.write_str(&opts.lightweight_name);
    h.write_str(&opts.wrappers_name);
    h.write_u64(hash::hash_str(&emit_art.lightweight));
    h.write_u64(hash::hash_str(&emit_art.wrappers));
    for (path, text) in rewritten {
        h.write_str(path);
        h.write_u64(hash::hash_str(text));
    }
    h.write_u64(u64::from(opts.verify));
    h.finish()
}

/// Per-stage bookkeeping the DAG nodes write and the assembly reads.
/// Parse is aggregated like rewrite: one counter set across every TU
/// root (a hit only when *all* roots hit; duration is summed work time).
#[derive(Debug, Default, Clone)]
struct RunLog {
    parse_dur: Duration,
    parse_longest: Duration,
    parse_misses: usize,
    parse_invalidated: bool,
    analyze: Option<(CacheLookup, Duration)>,
    plan: Option<(CacheLookup, Duration)>,
    emit: Option<(CacheLookup, Duration)>,
    verify: Option<(CacheLookup, Duration)>,
    files_reparsed: usize,
    rewrites_recomputed: usize,
    rewrites_cached: usize,
    rewrite_invalidated: bool,
    rewrite_dur: Duration,
}

/// A persistent Header Substitution session: the engine pipeline plus a
/// memoizing artifact cache and an editable file tree.
///
/// # Example
///
/// ```
/// use yalla_core::{Options, Session};
/// use yalla_cpp::vfs::Vfs;
///
/// let mut vfs = Vfs::new();
/// vfs.add_file("lib.hpp", "namespace K { class W { public: int id() const; }; }\n");
/// vfs.add_file("main.cpp", "#include \"lib.hpp\"\nint f(K::W& w) { return w.id(); }\n");
/// let mut session = Session::new(
///     Options {
///         header: "lib.hpp".into(),
///         sources: vec!["main.cpp".into()],
///         ..Options::default()
///     },
///     vfs,
/// );
/// let cold = session.rerun().unwrap();
/// assert!(!cold.fully_cached());
/// let warm = session.rerun().unwrap();
/// assert!(warm.fully_cached());
/// assert_eq!(warm.files_reparsed, 0);
/// ```
#[derive(Debug)]
pub struct Session {
    options: Options,
    vfs: Arc<Vfs>,
    parse_cache: Arc<ParseCache>,
    analysis: Arc<SharedSlot<AnalysisArtifact>>,
    plan: Arc<SharedSlot<Plan>>,
    emit: Arc<SharedSlot<EmitArtifact>>,
    rewrites: Arc<Mutex<HashMap<String, Slot<Arc<String>>>>>,
    verify: Arc<SharedSlot<VerifyArtifact>>,
    store: Option<Arc<Store>>,
    reruns: u64,
}

impl Session {
    /// Creates a session over `vfs` with empty caches. When
    /// `YALLA_CACHE_DIR` names a cache directory, the process-wide
    /// on-disk store is attached automatically ([`Session::with_store`]
    /// controls this explicitly).
    pub fn new(options: Options, vfs: Vfs) -> Self {
        Session::with_store(options, vfs, Store::global())
    }

    /// Creates a session over `vfs` backed by `store` as a second cache
    /// tier (memory → disk → recompute), or purely in-memory when `None`.
    pub fn with_store(options: Options, vfs: Vfs, store: Option<Arc<Store>>) -> Self {
        Session {
            options,
            vfs: Arc::new(vfs),
            parse_cache: Arc::new(ParseCache::with_store(store.clone())),
            analysis: Arc::new(Mutex::new(None)),
            plan: Arc::new(Mutex::new(None)),
            emit: Arc::new(Mutex::new(None)),
            rewrites: Arc::new(Mutex::new(HashMap::new())),
            verify: Arc::new(Mutex::new(None)),
            store,
            reruns: 0,
        }
    }

    /// The attached on-disk store, if any.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// The session's options.
    pub fn options(&self) -> &Options {
        &self.options
    }

    /// The session's file tree.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Number of completed reruns.
    pub fn reruns(&self) -> u64 {
        self.reruns
    }

    /// Applies an edit to the session's file tree (Figure 6 step ① of the
    /// next iteration). The file must already exist.
    ///
    /// # Errors
    ///
    /// Fails when `path` is not registered in the file tree.
    pub fn apply_edit(
        &mut self,
        path: &str,
        new_text: impl Into<String>,
    ) -> Result<FileId, YallaError> {
        // In-flight DAG nodes of a previous rerun hold their own Arc<Vfs>
        // snapshot; make_mut copies-on-write only if one is still alive.
        Arc::make_mut(&mut self.vfs)
            .apply_edit(path, new_text)
            .map_err(YallaError::Cpp)
    }

    /// Runs the pipeline on the process-wide executor, recomputing only
    /// stages whose input keys changed. The first call is a cold run
    /// (every stage misses).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`crate::Engine::run`]; missing sources are
    /// all reported together in [`YallaError::SourcesNotFound`].
    pub fn rerun(&mut self) -> Result<SessionRun, YallaError> {
        self.rerun_on(Executor::global())
    }

    /// Runs the pipeline as a stage DAG on `exec`. Artifacts are
    /// byte-identical for every worker count; only scheduling changes.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Session::rerun`].
    pub fn rerun_on(&mut self, exec: &Executor) -> Result<SessionRun, YallaError> {
        self.rerun_with(exec, &CancelToken::new(), Priority::Interactive)
    }

    /// Runs the pipeline as a stage DAG on `exec`, polling `cancel` at
    /// every *cancel point* and queueing every node at `priority`.
    ///
    /// Cancel points are the stage and per-source-rewrite boundaries
    /// plus the disk-store probe — the only places a run can stop with
    /// its caches guaranteed consistent: a stage either completed and
    /// published its artifact under its content key, or it never ran.
    /// Each point is a [`CancelToken::checkpoint`] call, so an armed
    /// token (`trip_after(k)`) deterministically cancels the run at its
    /// `k`-th boundary. A cancelled run returns
    /// [`YallaError::Cancelled`] after every in-flight node has
    /// finished; no result is assembled and no run bundle is persisted,
    /// but stages that completed before the cancel keep their memoized
    /// artifacts, so a retry resumes from them.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Session::rerun`], plus
    /// [`YallaError::Cancelled`].
    pub fn rerun_with(
        &mut self,
        exec: &Executor,
        cancel: &CancelToken,
        priority: Priority,
    ) -> Result<SessionRun, YallaError> {
        let _run_span = yalla_obs::span("engine", "substitute");
        yalla_obs::count(yalla_obs::metrics::names::ENGINE_RUNS, 1);
        yalla_obs::count(yalla_obs::metrics::names::SESSION_RERUNS, 1);
        self.reruns += 1;
        let opts = Arc::new(self.options.clone());
        let vfs = Arc::clone(&self.vfs);

        // ---- validate sources up front: report *all* missing paths -----
        let main_source = opts
            .sources
            .first()
            .ok_or_else(|| YallaError::SourceNotFound("<no sources given>".into()))?
            .clone();
        let roots: Arc<Vec<String>> = Arc::new(opts.parse_roots());
        let mut seen_missing = HashSet::new();
        let missing: Vec<String> = opts
            .sources
            .iter()
            .chain(roots.iter())
            .filter(|s| vfs.lookup(s).is_none() && seen_missing.insert(s.as_str().to_string()))
            .cloned()
            .collect();
        if !missing.is_empty() {
            return Err(YallaError::SourcesNotFound(missing));
        }
        // Which TU a source's rewrite reads from: its own root when the
        // source names one, otherwise the primary root's TU (the classic
        // single-TU shape, where sources[1..] are support files).
        let root_index: HashMap<&str, usize> = roots
            .iter()
            .enumerate()
            .map(|(i, r)| (r.as_str(), i))
            .collect();
        let owners: Vec<usize> = opts
            .sources
            .iter()
            .map(|s| root_index.get(s.as_str()).copied().unwrap_or(0))
            .collect();

        // Cells carrying each stage's output to its dependents (one parse
        // cell per TU root; the analyze node reads them all).
        let parse_cells: Arc<Vec<OnceLock<CachedParse>>> =
            Arc::new((0..roots.len()).map(|_| OnceLock::new()).collect());
        let analysis_cell: Arc<OnceLock<Arc<AnalysisArtifact>>> = Arc::new(OnceLock::new());
        let plan_cell: Arc<OnceLock<(Arc<Plan>, u64)>> = Arc::new(OnceLock::new());
        let emit_cell: Arc<OnceLock<Arc<EmitArtifact>>> = Arc::new(OnceLock::new());
        let verify_cell: Arc<OnceLock<Arc<VerifyArtifact>>> = Arc::new(OnceLock::new());
        let log = Arc::new(Mutex::new(RunLog::default()));

        // Cancel point: run entry. A rerun superseded before it starts
        // costs nothing.
        if cancel.checkpoint() {
            return Err(YallaError::Cancelled);
        }

        // ---- warm pre-pass ---------------------------------------------
        // Walk the key chain with cheap hashing only; every stage proven
        // warm becomes a `cached` DAG node and never occupies a worker.
        // The chain stops at the first stage whose key needs a recomputed
        // predecessor — later stages become live nodes and re-check their
        // slots at run time.
        let warm_parses: Vec<Option<CachedParse>> = roots
            .iter()
            .map(|r| self.parse_cache.probe(&vfs, &opts.defines, r))
            .collect();
        let warm_closure: Option<u64> = warm_parses
            .iter()
            .map(|p| p.as_ref().map(|p| p.closure_hash))
            .collect::<Option<Vec<u64>>>()
            .map(|hashes| combined_closure_hash(&hashes));
        let warm_analysis = warm_closure
            .and_then(|closure| slot_hit(&self.analysis, analyze_key_of(closure, &opts)));
        let warm_plan = warm_analysis.as_ref().and_then(|a| {
            let key = plan_key_of(a);
            slot_hit(&self.plan, key).map(|p| (p, key))
        });
        let warm_emit = warm_plan
            .as_ref()
            .and_then(|(_, key)| slot_hit(&self.emit, *key));
        let rewrite_warm: Vec<bool> = match (&warm_closure, &warm_analysis, &warm_plan) {
            (Some(_), Some(a), Some((_, plan_key))) => {
                let map = self.rewrites.lock().expect("rewrites lock");
                opts.sources
                    .iter()
                    .zip(&owners)
                    .map(|(s, &owner)| {
                        let tu = &warm_parses[owner].as_ref().expect("all roots warm").tu;
                        let key = rewrite_key_of(&vfs, tu, a, *plan_key, s);
                        map.get(s).is_some_and(|slot| slot.key == key)
                    })
                    .collect()
            }
            _ => vec![false; opts.sources.len()],
        };
        let all_rewrites_warm = rewrite_warm.iter().all(|w| *w);
        let warm_verify = match (&warm_closure, &warm_plan, &warm_emit) {
            (Some(closure), Some((_, plan_key)), Some(e)) if all_rewrites_warm => {
                let map = self.rewrites.lock().expect("rewrites lock");
                let rewritten: BTreeMap<String, Arc<String>> = opts
                    .sources
                    .iter()
                    .map(|s| (s.clone(), Arc::clone(&map[s].artifact)))
                    .collect();
                let key = verify_key_of(*closure, *plan_key, &opts, e, &rewritten);
                slot_hit(&self.verify, key)
            }
            _ => None,
        };

        // Cancel point: store boundary. Guards the disk probe below (a
        // superseded rerun skips the store lookups entirely) and gives
        // fully-warm runs a second boundary before they publish.
        if cancel.checkpoint() {
            return Err(YallaError::Cancelled);
        }

        // ---- disk tier (memory → disk → recompute) ---------------------
        // When the memory tier cannot prove the whole run warm, ask the
        // on-disk store: a validated parse manifest recovers the closure
        // hash without preprocessing anything, and the closure hash plus
        // options plus source hashes addresses a whole-run artifact
        // bundle. A bundle hit is a complete answer — every stage reports
        // `hit` and nothing is scheduled, which is what makes a fresh
        // process (or a daemon restarted after `kill -9`) disk-warm.
        if warm_verify.is_none() {
            if let Some(store) = &self.store {
                let closure_hash = roots
                    .iter()
                    .zip(&warm_parses)
                    .map(|(root, warm)| {
                        warm.as_ref()
                            .map(|p| p.closure_hash)
                            .or_else(|| self.parse_cache.probe_disk(&vfs, &opts.defines, root))
                    })
                    .collect::<Option<Vec<u64>>>()
                    .map(|hashes| combined_closure_hash(&hashes));
                if let Some(closure_hash) = closure_hash {
                    let run_key = persist::run_key_of(closure_hash, &opts, &vfs);
                    // Zero-copy hit: the record is validated once and the
                    // bundle module decodes straight from the payload view.
                    let bundle = store
                        .get_view(NS_RUN, run_key)
                        .and_then(|view| persist::decode_run(&view));
                    if let Some(result) = bundle {
                        yalla_obs::global().instant("engine", "run (disk-warm)");
                        for _ in roots.iter() {
                            note(Stage::Parse, CacheLookup::Hit, false);
                        }
                        note(Stage::Analyze, CacheLookup::Hit, true);
                        note(Stage::Plan, CacheLookup::Hit, true);
                        note(Stage::Emit, CacheLookup::Hit, true);
                        for _ in &opts.sources {
                            note(Stage::Rewrite, CacheLookup::Hit, true);
                        }
                        note(Stage::Verify, CacheLookup::Hit, true);
                        let stages = [
                            Stage::Parse,
                            Stage::Analyze,
                            Stage::Plan,
                            Stage::Emit,
                            Stage::Rewrite,
                            Stage::Verify,
                        ]
                        .into_iter()
                        .map(|stage| StageOutcome {
                            stage,
                            lookup: CacheLookup::Hit,
                            duration: Duration::ZERO,
                        })
                        .collect();
                        return Ok(SessionRun {
                            result,
                            stages,
                            files_reparsed: 0,
                            rewrites_recomputed: 0,
                            rewrites_cached: opts.sources.len(),
                            parse_longest: Duration::ZERO,
                        });
                    }
                }
            }
        }

        // ---- build the stage DAG ---------------------------------------
        let mut dag: Dag<YallaError> = Dag::new();

        // One parse node per TU root, all independent — a mega project's
        // per-TU preprocessing and parsing fans out across the pool just
        // like per-source rewrites always have.
        let mut parse_ids = Vec::with_capacity(roots.len());
        for (i, root) in roots.iter().enumerate() {
            let label = if roots.len() == 1 {
                "parse".to_string()
            } else {
                format!("parse {root}")
            };
            match &warm_parses[i] {
                Some(p) => {
                    parse_cells[i].set(p.clone()).expect("fresh cell");
                    note(Stage::Parse, CacheLookup::Hit, false);
                    yalla_obs::global().instant("engine", "parse (cached)");
                    parse_ids.push(dag.cached(label, &[]));
                }
                None => {
                    let (cache, vfs, opts, root, cells, log, cancel) = (
                        Arc::clone(&self.parse_cache),
                        Arc::clone(&vfs),
                        Arc::clone(&opts),
                        root.clone(),
                        Arc::clone(&parse_cells),
                        Arc::clone(&log),
                        cancel.clone(),
                    );
                    parse_ids.push(dag.node(label, &[], move || {
                        if cancel.checkpoint() {
                            return Err(YallaError::Cancelled);
                        }
                        let span = yalla_obs::span("engine", "parse");
                        let parsed = cache.parse(&vfs, &opts.defines, &root)?;
                        let dur = span.finish();
                        note(Stage::Parse, parsed.lookup, false);
                        let dur = if parsed.lookup.is_hit() {
                            yalla_obs::global().instant("engine", "parse (cached)");
                            Duration::ZERO
                        } else {
                            yalla_obs::count(yalla_obs::metrics::names::SESSION_TUS_REPARSED, 1);
                            dur
                        };
                        let mut log = log.lock().expect("run log");
                        if !parsed.lookup.is_hit() {
                            log.files_reparsed += 1;
                            log.parse_misses += 1;
                            log.parse_invalidated |= parsed.lookup == CacheLookup::Invalidated;
                        }
                        log.parse_dur += dur;
                        log.parse_longest = log.parse_longest.max(dur);
                        cells[i].set(parsed).expect("parse node runs once");
                        Ok(())
                    }));
                }
            }
        }

        let analyze_id = match &warm_analysis {
            Some(a) => {
                analysis_cell.set(Arc::clone(a)).expect("fresh cell");
                note(Stage::Analyze, CacheLookup::Hit, true);
                yalla_obs::global().instant("engine", "analyze (cached)");
                log.lock().expect("run log").analyze = Some((CacheLookup::Hit, Duration::ZERO));
                dag.cached("analyze", &parse_ids)
            }
            None => {
                let (slot, vfs, opts, parse_cells, cell, log, cancel) = (
                    Arc::clone(&self.analysis),
                    Arc::clone(&vfs),
                    Arc::clone(&opts),
                    Arc::clone(&parse_cells),
                    Arc::clone(&analysis_cell),
                    Arc::clone(&log),
                    cancel.clone(),
                );
                dag.node("analyze", &parse_ids, move || {
                    if cancel.checkpoint() {
                        return Err(YallaError::Cancelled);
                    }
                    let parsed_roots: Vec<Arc<ParsedTu>> = parse_cells
                        .iter()
                        .map(|c| Arc::clone(&c.get().expect("parse completed").tu))
                        .collect();
                    let hashes: Vec<u64> = parse_cells
                        .iter()
                        .map(|c| c.get().expect("parse completed").closure_hash)
                        .collect();
                    let key = analyze_key_of(combined_closure_hash(&hashes), &opts);
                    let span = yalla_obs::span("engine", "analyze");
                    let (artifact, lookup) =
                        refresh(&slot, key, || stage_analyze(&parsed_roots, &vfs, &opts))?;
                    let dur = span.finish();
                    note(Stage::Analyze, lookup, true);
                    let dur = if lookup.is_hit() {
                        yalla_obs::global().instant("engine", "analyze (cached)");
                        Duration::ZERO
                    } else {
                        dur
                    };
                    log.lock().expect("run log").analyze = Some((lookup, dur));
                    cell.set(artifact).expect("analyze node runs once");
                    Ok(())
                })
            }
        };

        let plan_id = match &warm_plan {
            Some((p, key)) => {
                plan_cell.set((Arc::clone(p), *key)).expect("fresh cell");
                note(Stage::Plan, CacheLookup::Hit, true);
                yalla_obs::global().instant("engine", "plan (cached)");
                log.lock().expect("run log").plan = Some((CacheLookup::Hit, Duration::ZERO));
                dag.cached("plan", &[analyze_id])
            }
            None => {
                let (slot, opts, analysis_cell, cell, log, cancel) = (
                    Arc::clone(&self.plan),
                    Arc::clone(&opts),
                    Arc::clone(&analysis_cell),
                    Arc::clone(&plan_cell),
                    Arc::clone(&log),
                    cancel.clone(),
                );
                dag.node("plan", &[analyze_id], move || {
                    if cancel.checkpoint() {
                        return Err(YallaError::Cancelled);
                    }
                    let analysis = analysis_cell.get().expect("analyze completed");
                    let key = plan_key_of(analysis);
                    let span = yalla_obs::span("engine", "plan");
                    let (artifact, lookup) =
                        refresh(&slot, key, || Ok(stage_plan(analysis, &opts)))?;
                    let dur = span.finish();
                    note(Stage::Plan, lookup, true);
                    let dur = if lookup.is_hit() {
                        yalla_obs::global().instant("engine", "plan (cached)");
                        Duration::ZERO
                    } else {
                        dur
                    };
                    log.lock().expect("run log").plan = Some((lookup, dur));
                    cell.set((artifact, key)).expect("plan node runs once");
                    Ok(())
                })
            }
        };

        let emit_id = match &warm_emit {
            Some(e) => {
                emit_cell.set(Arc::clone(e)).expect("fresh cell");
                note(Stage::Emit, CacheLookup::Hit, true);
                log.lock().expect("run log").emit = Some((CacheLookup::Hit, Duration::ZERO));
                dag.cached("emit", &[plan_id])
            }
            None => {
                let (slot, opts, plan_cell, cell, log, cancel) = (
                    Arc::clone(&self.emit),
                    Arc::clone(&opts),
                    Arc::clone(&plan_cell),
                    Arc::clone(&emit_cell),
                    Arc::clone(&log),
                    cancel.clone(),
                );
                dag.node("emit", &[plan_id], move || {
                    if cancel.checkpoint() {
                        return Err(YallaError::Cancelled);
                    }
                    let (plan, plan_key) = plan_cell.get().expect("plan completed");
                    let span = yalla_obs::span("engine", "emit");
                    let (artifact, lookup) = refresh(&slot, *plan_key, || {
                        Ok(EmitArtifact {
                            lightweight: emit::lightweight_header(plan, &opts.header),
                            wrappers: emit::wrappers_file(
                                plan,
                                &opts.header,
                                &opts.lightweight_name,
                            ),
                        })
                    })?;
                    let dur = span.finish();
                    note(Stage::Emit, lookup, true);
                    let dur = if lookup.is_hit() { Duration::ZERO } else { dur };
                    log.lock().expect("run log").emit = Some((lookup, dur));
                    cell.set(artifact).expect("emit node runs once");
                    Ok(())
                })
            }
        };

        let mut rewrite_ids = Vec::with_capacity(opts.sources.len());
        for (i, source) in opts.sources.iter().enumerate() {
            if rewrite_warm[i] {
                note(Stage::Rewrite, CacheLookup::Hit, true);
                log.lock().expect("run log").rewrites_cached += 1;
                rewrite_ids.push(dag.cached(format!("rewrite {source}"), &[plan_id]));
                continue;
            }
            let owner = owners[i];
            let (map, vfs, opts, source, parse_cells, analysis_cell, plan_cell, log, cancel) = (
                Arc::clone(&self.rewrites),
                Arc::clone(&vfs),
                Arc::clone(&opts),
                source.clone(),
                Arc::clone(&parse_cells),
                Arc::clone(&analysis_cell),
                Arc::clone(&plan_cell),
                Arc::clone(&log),
                cancel.clone(),
            );
            rewrite_ids.push(dag.node(format!("rewrite {source}"), &[plan_id], move || {
                if cancel.checkpoint() {
                    return Err(YallaError::Cancelled);
                }
                let parsed = parse_cells[owner].get().expect("parse completed");
                let analysis = analysis_cell.get().expect("analyze completed");
                let (plan, plan_key) = plan_cell.get().expect("plan completed");
                let key = rewrite_key_of(&vfs, &parsed.tu, analysis, *plan_key, &source);
                let stale = {
                    let map = map.lock().expect("rewrites lock");
                    match map.get(&source) {
                        Some(slot) if slot.key == key => {
                            drop(map);
                            note(Stage::Rewrite, CacheLookup::Hit, true);
                            log.lock().expect("run log").rewrites_cached += 1;
                            return Ok(());
                        }
                        existing => existing.is_some(),
                    }
                };
                let lookup = if stale {
                    CacheLookup::Invalidated
                } else {
                    CacheLookup::Miss
                };
                note(Stage::Rewrite, lookup, true);
                let span = yalla_obs::span("engine", "rewrite");
                let text =
                    stage_rewrite_one(&vfs, &parsed.tu, plan, &analysis.table, &opts, &source);
                let dur = span.finish();
                map.lock().expect("rewrites lock").insert(
                    source,
                    Slot {
                        key,
                        artifact: Arc::new(text),
                    },
                );
                let mut log = log.lock().expect("run log");
                log.rewrites_recomputed += 1;
                log.rewrite_invalidated |= stale;
                log.rewrite_dur += dur;
                Ok(())
            }));
        }

        let mut verify_deps = vec![emit_id];
        verify_deps.extend(rewrite_ids.iter().copied());
        match &warm_verify {
            Some(v) => {
                verify_cell.set(Arc::clone(v)).expect("fresh cell");
                note(Stage::Verify, CacheLookup::Hit, true);
                yalla_obs::global().instant("engine", "verify (cached)");
                log.lock().expect("run log").verify = Some((CacheLookup::Hit, Duration::ZERO));
                dag.cached("verify", &verify_deps);
            }
            None => {
                let (slot, map, vfs, opts, main, parse_cells, plan_cell, emit_cell, cell, log) = (
                    Arc::clone(&self.verify),
                    Arc::clone(&self.rewrites),
                    Arc::clone(&vfs),
                    Arc::clone(&opts),
                    main_source.clone(),
                    Arc::clone(&parse_cells),
                    Arc::clone(&plan_cell),
                    Arc::clone(&emit_cell),
                    Arc::clone(&verify_cell),
                    Arc::clone(&log),
                );
                let cancel = cancel.clone();
                dag.node("verify", &verify_deps, move || {
                    if cancel.checkpoint() {
                        return Err(YallaError::Cancelled);
                    }
                    let hashes: Vec<u64> = parse_cells
                        .iter()
                        .map(|c| c.get().expect("parse completed").closure_hash)
                        .collect();
                    let closure_hash = combined_closure_hash(&hashes);
                    let (_, plan_key) = plan_cell.get().expect("plan completed");
                    let emit_art = emit_cell.get().expect("emit completed");
                    let rewritten: BTreeMap<String, Arc<String>> = {
                        let map = map.lock().expect("rewrites lock");
                        opts.sources
                            .iter()
                            .map(|s| (s.clone(), Arc::clone(&map[s].artifact)))
                            .collect()
                    };
                    let key = verify_key_of(closure_hash, *plan_key, &opts, emit_art, &rewritten);
                    let span = yalla_obs::span("engine", "verify");
                    let (artifact, lookup) = refresh(&slot, key, || {
                        Ok(stage_verify(&vfs, &rewritten, emit_art, &opts, &main))
                    })?;
                    let dur = span.finish();
                    note(Stage::Verify, lookup, true);
                    let dur = if lookup.is_hit() {
                        yalla_obs::global().instant("engine", "verify (cached)");
                        Duration::ZERO
                    } else {
                        dur
                    };
                    log.lock().expect("run log").verify = Some((lookup, dur));
                    cell.set(artifact).expect("verify node runs once");
                    Ok(())
                });
            }
        }

        // ---- run --------------------------------------------------------
        let run = dag.run_at(exec, priority);
        if let Some(err) = run.error {
            // A cancelled run returns only after every in-flight node has
            // finished (the DAG waits for the whole graph), so no node is
            // still writing into the stage slots when the caller retries.
            return Err(err);
        }

        // ---- assemble the result ----------------------------------------
        let log = log.lock().expect("run log").clone();
        let parsed = parse_cells[0].get().expect("parse completed");
        let closure_hash = combined_closure_hash(
            &parse_cells
                .iter()
                .map(|c| c.get().expect("parse completed").closure_hash)
                .collect::<Vec<u64>>(),
        );
        let (plan, _) = plan_cell.get().expect("plan completed");
        let emit_art = emit_cell.get().expect("emit completed");
        let verify_art = verify_cell.get().expect("verify completed");

        let rewrite_lookup = if log.rewrites_recomputed == 0 {
            yalla_obs::global().instant("engine", "rewrite (cached)");
            CacheLookup::Hit
        } else if log.rewrite_invalidated {
            CacheLookup::Invalidated
        } else {
            CacheLookup::Miss
        };
        let (parse_lookup, parse_dur) = (
            if log.parse_misses == 0 {
                CacheLookup::Hit
            } else if log.parse_invalidated {
                CacheLookup::Invalidated
            } else {
                CacheLookup::Miss
            },
            log.parse_dur,
        );
        let (analyze_lookup, analyze_dur) = log.analyze.expect("analyze recorded");
        let (plan_lookup, plan_dur) = log.plan.expect("plan recorded");
        let (emit_lookup, emit_dur) = log.emit.expect("emit recorded");
        let (verify_lookup, verify_dur) = log.verify.expect("verify recorded");
        let stages = vec![
            StageOutcome {
                stage: Stage::Parse,
                lookup: parse_lookup,
                duration: parse_dur,
            },
            StageOutcome {
                stage: Stage::Analyze,
                lookup: analyze_lookup,
                duration: analyze_dur,
            },
            StageOutcome {
                stage: Stage::Plan,
                lookup: plan_lookup,
                duration: plan_dur,
            },
            StageOutcome {
                stage: Stage::Emit,
                lookup: emit_lookup,
                duration: emit_dur,
            },
            StageOutcome {
                stage: Stage::Rewrite,
                lookup: rewrite_lookup,
                duration: log.rewrite_dur,
            },
            StageOutcome {
                stage: Stage::Verify,
                lookup: verify_lookup,
                duration: verify_dur,
            },
        ];
        let timings = Timings {
            parse: parse_dur,
            analyze: analyze_dur,
            plan: plan_dur,
            generate: emit_dur + log.rewrite_dur,
            verify: verify_dur,
        };

        // ---- latency telemetry ------------------------------------------
        // Recomputed stages feed the `latency.stage.<stage>` histograms
        // (cache hits report zero and would drown the distribution, so
        // they are skipped); one event-log line per stage carries the
        // lookup and duration, joined to the daemon request by the
        // ambient request id this handler thread holds.
        for outcome in &stages {
            if !outcome.lookup.is_hit() {
                yalla_obs::observe(
                    &yalla_obs::metrics::names::latency_stage(outcome.stage.label()),
                    outcome.duration,
                );
            }
            if yalla_obs::log::is_active() {
                let lookup = match outcome.lookup {
                    CacheLookup::Hit => "hit",
                    CacheLookup::Miss => "miss",
                    CacheLookup::Invalidated => "invalidated",
                };
                yalla_obs::log::emit(
                    "stage",
                    &[
                        ("stage", outcome.stage.label().into()),
                        ("lookup", lookup.into()),
                        (
                            "dur_us",
                            yalla_obs::ArgValue::Int(outcome.duration.as_micros() as i64),
                        ),
                    ],
                );
            }
        }

        let rewritten: BTreeMap<String, String> = {
            let map = self.rewrites.lock().expect("rewrites lock");
            opts.sources
                .iter()
                .map(|s| (s.clone(), (*map[s].artifact).clone()))
                .collect()
        };

        let mut report = Report::from_plan(plan);
        report.before = TuStats {
            loc: parsed.tu.stats.lines_compiled,
            headers: parsed.tu.stats.header_count(),
        };
        report.verification = verify_art.verification.clone();
        if let Some(after) = verify_art.after {
            report.after = after;
        }

        let result = SubstitutionResult {
            lightweight_header: emit_art.lightweight.clone(),
            wrappers_file: emit_art.wrappers.clone(),
            rewritten_sources: rewritten,
            plan: (**plan).clone(),
            report,
            timings,
        };

        // ---- persist the run bundle -------------------------------------
        // Anything that recomputed produces new artifacts worth keeping;
        // a fully-cached run only writes if the bundle has gone missing
        // (evicted, or a sabotaged earlier write). Best-effort by design.
        if let Some(store) = &self.store {
            let all_hit = stages.iter().all(|s| s.lookup.is_hit());
            let run_key = persist::run_key_of(closure_hash, &opts, &vfs);
            if !(all_hit && store.contains(NS_RUN, run_key)) {
                if let Some(payload) = persist::encode_run(&result) {
                    store.put(NS_RUN, run_key, &payload);
                }
            }
        }

        Ok(SessionRun {
            result,
            stages,
            files_reparsed: log.files_reparsed,
            rewrites_recomputed: log.rewrites_recomputed,
            rewrites_cached: log.rewrites_cached,
            parse_longest: log.parse_longest,
        })
    }
}

// ---- stage implementations ------------------------------------------------

/// The analyze stage: symbol table + usage collection + pre-declared
/// symbols (paper §6, Fig. 5 lines 2–10).
///
/// With multiple TU roots, the primary root (first entry) anchors the
/// symbol table, target-file set, and fingerprint; every other root
/// contributes its own usage of the same header — collected against its
/// own TU, merged in root order, so the combined report (and everything
/// planned from it) is byte-identical at any worker count. A secondary
/// root that does not include the target header simply contributes
/// nothing. All usage keys name header-side symbols, which the shared
/// header declares identically in every TU, so resolving the merged
/// report against the primary table is sound.
fn stage_analyze(
    parsed_roots: &[Arc<ParsedTu>],
    vfs: &Vfs,
    opts: &Options,
) -> Result<AnalysisArtifact, YallaError> {
    let parsed = &parsed_roots[0];
    let header_file = vfs
        .resolve_include(&opts.header, None, false)
        .map_err(|_| YallaError::HeaderNotIncluded(opts.header.clone()))?;
    if !parsed.stats.headers.contains(&header_file) {
        return Err(YallaError::HeaderNotIncluded(opts.header.clone()));
    }
    let target_files = crate::engine::reachable_from(header_file, &parsed.stats.include_edges);
    let mut source_files: HashSet<FileId> = HashSet::new();
    for s in &opts.sources {
        source_files.insert(vfs.lookup(s).expect("sources validated"));
    }

    let table = SymbolTable::build(&parsed.ast);
    let mut usage = UsageReport::collect(&parsed.ast, &table, &target_files, &source_files);
    for tu in &parsed_roots[1..] {
        if !tu.stats.headers.contains(&header_file) {
            continue;
        }
        let tu_targets = crate::engine::reachable_from(header_file, &tu.stats.include_edges);
        let tu_table = SymbolTable::build(&tu.ast);
        usage.merge_from(UsageReport::collect(
            &tu.ast,
            &tu_table,
            &tu_targets,
            &source_files,
        ));
    }
    // Pre-declared symbols (paper §6): force-listed classes/functions
    // enter the plan as if used, so the lightweight header covers them
    // before the sources grow into them.
    let mut predeclare_diags = Vec::new();
    for key in &opts.extra_symbols {
        match table.resolve(key) {
            Some(sym) if target_files.contains(&sym.file) => match &sym.kind {
                yalla_analysis::symbols::SymbolKind::Class(_) => {
                    usage.classes.entry(sym.key.clone()).or_default();
                }
                yalla_analysis::symbols::SymbolKind::Function(f) => {
                    usage.functions.entry(sym.key.clone()).or_insert_with(|| {
                        yalla_analysis::usage::UsedFunction {
                            key: sym.key.clone(),
                            decl: (**f).clone(),
                            calls: Vec::new(),
                        }
                    });
                }
                other => predeclare_diags.push(format!(
                    "pre-declared symbol `{key}` is a {}, which needs no declaration",
                    other.tag()
                )),
            },
            Some(_) => predeclare_diags.push(format!(
                "pre-declared symbol `{key}` is not defined by `{}`",
                opts.header
            )),
            None => predeclare_diags.push(format!("pre-declared symbol `{key}` not found")),
        }
    }
    let fingerprint = usage_fingerprint(&usage, &table, opts);
    Ok(AnalysisArtifact {
        table,
        usage,
        predeclare_diags,
        target_files,
        source_files,
        usage_fingerprint: fingerprint,
    })
}

/// The plan stage (Fig. 5 lines 11–25) plus diagnostic attachment.
fn stage_plan(analysis: &AnalysisArtifact, opts: &Options) -> Plan {
    let mut plan = Plan::build(&analysis.usage, &analysis.table);
    for message in &analysis.predeclare_diags {
        plan.diagnostics.push(Diagnostic {
            kind: DiagnosticKind::UnknownSymbol,
            message: message.clone(),
            span: None,
        });
    }
    if analysis.usage.is_empty() {
        plan.diagnostics.push(Diagnostic {
            kind: DiagnosticKind::Note,
            message: format!(
                "sources use nothing from `{}`; the include is simply dropped",
                opts.header
            ),
            span: None,
        });
    }
    yalla_obs::count(
        yalla_obs::metrics::names::WRAPPERS_GENERATED,
        (plan.fn_wrappers.len() + plan.method_wrappers.len()) as i64,
    );
    plan
}

/// Rewrites one source file (Fig. 5 lines 26–27, per-source half).
fn stage_rewrite_one(
    vfs: &Vfs,
    parsed: &ParsedTu,
    plan: &Plan,
    table: &SymbolTable,
    opts: &Options,
    source: &str,
) -> String {
    let id = vfs.lookup(source).expect("sources validated");
    let text = vfs.text(id);
    let all_decls: Vec<&yalla_cpp::ast::Decl> = parsed.ast.decls.iter().collect();
    let mut tr = Transformer::new(plan, table);
    rewrite_file(
        id,
        text,
        &opts.header,
        &opts.lightweight_name,
        &all_decls,
        &mut tr,
    )
}

/// The verify stage: parses the substituted program, checks the
/// incomplete-type rules, and gathers the after-substitution TU stats.
fn stage_verify(
    vfs: &Vfs,
    rewritten: &BTreeMap<String, Arc<String>>,
    emit_art: &EmitArtifact,
    opts: &Options,
    main_source: &str,
) -> VerifyArtifact {
    let owned: BTreeMap<String, String> = rewritten
        .iter()
        .map(|(path, text)| (path.clone(), (**text).clone()))
        .collect();
    let verification = if opts.verify {
        verify(
            vfs,
            &owned,
            &opts.lightweight_name,
            &emit_art.lightweight,
            &opts.wrappers_name,
            &emit_art.wrappers,
            main_source,
        )
    } else {
        Verification::default()
    };
    // After-stats: preprocess the substituted TU.
    let mut after_vfs = vfs.clone();
    for (path, text) in &owned {
        after_vfs.add_file(path, text.clone());
    }
    after_vfs.add_file(&opts.lightweight_name, emit_art.lightweight.clone());
    let fe = yalla_cpp::Frontend::new(after_vfs);
    let after = fe
        .parse_translation_unit(main_source)
        .ok()
        .map(|after| TuStats {
            loc: after.stats.lines_compiled,
            headers: after.stats.header_count(),
        });
    VerifyArtifact {
        verification,
        after,
    }
}
