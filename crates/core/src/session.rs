//! Persistent, incremental Header Substitution sessions.
//!
//! [`crate::Engine::run`] is one-shot: every invocation re-preprocesses,
//! re-parses and re-analyzes everything. A [`Session`] keeps the pipeline's
//! intermediate artifacts alive across runs and recomputes only the stages
//! whose *input keys* changed, turning the tool itself into the steady-state
//! loop the paper measures (Figure 6: after the initial build, only the
//! cheap step ④ re-runs).
//!
//! The pipeline is an explicit stage DAG, each stage memoized behind a
//! content-addressed key:
//!
//! ```text
//! parse ──► analyze ──► plan ──► emit ────────┐
//!   │          │          └────► rewrite ─────┼──► verify
//!   └──────────┴───(per-source, parallel)─────┘
//! ```
//!
//! | stage   | key                                                        |
//! |---------|------------------------------------------------------------|
//! | parse   | `(main path, defines)` validated against the include closure's content hashes ([`yalla_cpp::cache::ParseCache`]) |
//! | analyze | closure hash + header + sources + `extra_symbols`          |
//! | plan    | usage fingerprint ([`crate::fingerprint`]) + pre-declare diagnostics |
//! | emit    | plan key                                                   |
//! | rewrite | per source: file hash + reachable source hashes + plan key |
//! | verify  | closure hash + emitted artifacts + rewritten source hashes |
//!
//! An edit that does not grow the used-symbol set leaves the usage
//! fingerprint unchanged, so plan and emit are skipped entirely — the
//! paper's §6 "no re-run needed" claim, which `extra_symbols` extends to
//! future symbols. Independent per-source rewrites run in parallel via
//! `std::thread::scope`. Every stage reports hits/misses/invalidations to
//! [`yalla_obs`] under `cache.<stage>.*`.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::time::Duration;

use yalla_analysis::symbols::SymbolTable;
use yalla_analysis::usage::UsageReport;
use yalla_cpp::cache::ParseCache;
use yalla_cpp::hash::{self, Fnv64};
use yalla_cpp::loc::FileId;
use yalla_cpp::vfs::Vfs;
use yalla_cpp::ParsedTu;

pub use yalla_cpp::cache::CacheLookup;

use crate::emit;
use crate::engine::{Options, SubstitutionResult, Timings, YallaError};
use crate::fingerprint::usage_fingerprint;
use crate::plan::{Diagnostic, DiagnosticKind, Plan};
use crate::report::{Report, TuStats, Verification};
use crate::rewrite::{rewrite_file, Transformer};
use crate::verify::verify;

/// The engine's pipeline stages, in dependency order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Preprocess + parse the translation unit.
    Parse,
    /// Symbol table, usage analysis, pre-declared symbols.
    Analyze,
    /// Plan construction (wrappers, functors, forward declarations).
    Plan,
    /// Lightweight header + wrappers file emission.
    Emit,
    /// Per-source rewriting.
    Rewrite,
    /// Verification + after-statistics.
    Verify,
}

impl Stage {
    /// Stable lowercase label (used in metric names and CLI output).
    pub fn label(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Analyze => "analyze",
            Stage::Plan => "plan",
            Stage::Emit => "emit",
            Stage::Rewrite => "rewrite",
            Stage::Verify => "verify",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What happened to one stage during a rerun.
#[derive(Debug, Clone, Copy)]
pub struct StageOutcome {
    /// Which stage.
    pub stage: Stage,
    /// Cache hit, miss, or invalidation. For the rewrite stage this is the
    /// aggregate over all sources (a hit only when *every* source was
    /// served from cache).
    pub lookup: CacheLookup,
    /// Wall-clock time spent recomputing; [`Duration::ZERO`] on a hit (the
    /// cached artifact was reused, so no stale duration is reported).
    pub duration: Duration,
}

/// Everything one [`Session::rerun`] produced.
#[derive(Debug)]
pub struct SessionRun {
    /// The substitution result, identical in shape to what
    /// [`crate::Engine::run`] returns. Timings of cached stages are zero.
    pub result: SubstitutionResult,
    /// Per-stage cache outcomes, in pipeline order.
    pub stages: Vec<StageOutcome>,
    /// Translation units re-parsed during this rerun (0 on a warm no-op
    /// rerun, 1 when any file in the TU's include closure changed).
    pub files_reparsed: usize,
    /// Source rewrites recomputed during this rerun.
    pub rewrites_recomputed: usize,
    /// Source rewrites served from cache.
    pub rewrites_cached: usize,
}

impl SessionRun {
    /// True when every stage was served from cache (a no-op rerun).
    pub fn fully_cached(&self) -> bool {
        self.stages.iter().all(|s| s.lookup.is_hit())
    }

    /// The outcome recorded for `stage`.
    pub fn outcome(&self, stage: Stage) -> CacheLookup {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| s.lookup)
            .expect("all stages recorded")
    }

    /// One-line summary (`parse=hit analyze=hit ... [2 reparsed]`), used
    /// by `yalla --iterate`.
    pub fn summary_line(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{}={}", s.stage, s.lookup.label()));
        }
        out.push_str(&format!(
            "  ({} reparsed, {} rewritten, {:.1} ms)",
            self.files_reparsed,
            self.rewrites_recomputed,
            self.result.timings.total().as_secs_f64() * 1e3,
        ));
        out
    }
}

/// The analyze stage's artifact: everything derived from the parsed TU
/// that the plan and rewrite stages consume.
#[derive(Debug)]
pub struct AnalysisArtifact {
    /// Symbol table of the whole TU.
    pub table: SymbolTable,
    /// Usage of the target header by the sources, with pre-declared
    /// symbols already merged in.
    pub usage: UsageReport,
    /// Diagnostics produced while resolving `extra_symbols`.
    pub predeclare_diags: Vec<String>,
    /// Files belonging to the substituted header (itself + transitive
    /// includes).
    pub target_files: HashSet<FileId>,
    /// The user source files.
    pub source_files: HashSet<FileId>,
    /// Fingerprint of the plan-relevant inputs
    /// ([`crate::fingerprint::usage_fingerprint`]).
    pub usage_fingerprint: u64,
}

#[derive(Debug, Clone)]
struct EmitArtifact {
    lightweight: String,
    wrappers: String,
}

#[derive(Debug, Clone)]
struct VerifyArtifact {
    verification: Verification,
    after: Option<TuStats>,
}

#[derive(Debug)]
struct Slot<T> {
    key: u64,
    artifact: T,
}

/// Refreshes a memoized stage slot: reuse when the key matches, otherwise
/// recompute and replace.
fn refresh<T>(
    slot: &mut Option<Slot<T>>,
    key: u64,
    compute: impl FnOnce() -> Result<T, YallaError>,
) -> Result<CacheLookup, YallaError> {
    if let Some(s) = slot {
        if s.key == key {
            return Ok(CacheLookup::Hit);
        }
    }
    let stale = slot.is_some();
    let artifact = compute()?;
    *slot = Some(Slot { key, artifact });
    Ok(if stale {
        CacheLookup::Invalidated
    } else {
        CacheLookup::Miss
    })
}

/// Bumps `cache.<stage>.<outcome>` (and, when `totals`, the global
/// `cache.hits`/`cache.misses`/`cache.invalidations` the parse cache
/// already maintains for itself).
fn note(stage: Stage, lookup: CacheLookup, totals: bool) {
    use yalla_obs::metrics::names;
    let outcome = match lookup {
        CacheLookup::Hit => "hits",
        CacheLookup::Miss | CacheLookup::Invalidated => "misses",
    };
    yalla_obs::count(&names::stage_cache(stage.label(), outcome), 1);
    if lookup == CacheLookup::Invalidated {
        yalla_obs::count(&names::stage_cache(stage.label(), "invalidations"), 1);
    }
    if totals {
        match lookup {
            CacheLookup::Hit => yalla_obs::count(names::CACHE_HITS, 1),
            CacheLookup::Miss => yalla_obs::count(names::CACHE_MISSES, 1),
            CacheLookup::Invalidated => {
                yalla_obs::count(names::CACHE_MISSES, 1);
                yalla_obs::count(names::CACHE_INVALIDATIONS, 1);
            }
        }
    }
}

/// A persistent Header Substitution session: the engine pipeline plus a
/// memoizing artifact cache and an editable file tree.
///
/// # Example
///
/// ```
/// use yalla_core::{Options, Session};
/// use yalla_cpp::vfs::Vfs;
///
/// let mut vfs = Vfs::new();
/// vfs.add_file("lib.hpp", "namespace K { class W { public: int id() const; }; }\n");
/// vfs.add_file("main.cpp", "#include \"lib.hpp\"\nint f(K::W& w) { return w.id(); }\n");
/// let mut session = Session::new(
///     Options {
///         header: "lib.hpp".into(),
///         sources: vec!["main.cpp".into()],
///         ..Options::default()
///     },
///     vfs,
/// );
/// let cold = session.rerun().unwrap();
/// assert!(!cold.fully_cached());
/// let warm = session.rerun().unwrap();
/// assert!(warm.fully_cached());
/// assert_eq!(warm.files_reparsed, 0);
/// ```
#[derive(Debug)]
pub struct Session {
    options: Options,
    vfs: Vfs,
    parse_cache: ParseCache,
    analysis: Option<Slot<AnalysisArtifact>>,
    plan: Option<Slot<Plan>>,
    emit: Option<Slot<EmitArtifact>>,
    rewrites: HashMap<String, Slot<String>>,
    verify: Option<Slot<VerifyArtifact>>,
    reruns: u64,
}

impl Session {
    /// Creates a session over `vfs` with empty caches.
    pub fn new(options: Options, vfs: Vfs) -> Self {
        Session {
            options,
            vfs,
            parse_cache: ParseCache::new(),
            analysis: None,
            plan: None,
            emit: None,
            rewrites: HashMap::new(),
            verify: None,
            reruns: 0,
        }
    }

    /// The session's options.
    pub fn options(&self) -> &Options {
        &self.options
    }

    /// The session's file tree.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Number of completed reruns.
    pub fn reruns(&self) -> u64 {
        self.reruns
    }

    /// Applies an edit to the session's file tree (Figure 6 step ① of the
    /// next iteration). The file must already exist.
    ///
    /// # Errors
    ///
    /// Fails when `path` is not registered in the file tree.
    pub fn apply_edit(
        &mut self,
        path: &str,
        new_text: impl Into<String>,
    ) -> Result<FileId, YallaError> {
        self.vfs.apply_edit(path, new_text).map_err(YallaError::Cpp)
    }

    /// Runs the pipeline, recomputing only stages whose input keys
    /// changed. The first call is a cold run (every stage misses).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`crate::Engine::run`]; missing sources are
    /// all reported together in [`YallaError::SourcesNotFound`].
    pub fn rerun(&mut self) -> Result<SessionRun, YallaError> {
        let _run_span = yalla_obs::span("engine", "substitute");
        yalla_obs::count(yalla_obs::metrics::names::ENGINE_RUNS, 1);
        yalla_obs::count(yalla_obs::metrics::names::SESSION_RERUNS, 1);
        self.reruns += 1;
        let opts = self.options.clone();
        let mut timings = Timings::default();
        let mut stages = Vec::with_capacity(6);

        // ---- validate sources up front: report *all* missing paths -----
        let main_source = opts
            .sources
            .first()
            .ok_or_else(|| YallaError::SourceNotFound("<no sources given>".into()))?
            .clone();
        let missing: Vec<String> = opts
            .sources
            .iter()
            .filter(|s| self.vfs.lookup(s).is_none())
            .cloned()
            .collect();
        if !missing.is_empty() {
            return Err(YallaError::SourcesNotFound(missing));
        }

        // ---- parse ------------------------------------------------------
        let parse_span = yalla_obs::span("engine", "parse");
        let parsed = self
            .parse_cache
            .parse(&self.vfs, &opts.defines, &main_source)?;
        let parse_dur = parse_span.finish();
        note(Stage::Parse, parsed.lookup, false);
        if parsed.lookup.is_hit() {
            yalla_obs::global().instant("engine", "parse (cached)");
        } else {
            yalla_obs::count(yalla_obs::metrics::names::SESSION_TUS_REPARSED, 1);
            timings.parse = parse_dur;
        }
        let files_reparsed = usize::from(!parsed.lookup.is_hit());
        stages.push(StageOutcome {
            stage: Stage::Parse,
            lookup: parsed.lookup,
            duration: timings.parse,
        });

        // ---- analyze ----------------------------------------------------
        let analyze_key = {
            let mut h = Fnv64::new();
            h.write_u64(parsed.closure_hash);
            h.write_str(&opts.header);
            for s in &opts.sources {
                h.write_str(s);
            }
            for e in &opts.extra_symbols {
                h.write_str(e);
            }
            h.finish()
        };
        let analyze_span = yalla_obs::span("engine", "analyze");
        let vfs = &self.vfs;
        let lookup = refresh(&mut self.analysis, analyze_key, || {
            stage_analyze(&parsed.tu, vfs, &opts)
        })?;
        let analyze_dur = analyze_span.finish();
        note(Stage::Analyze, lookup, true);
        if lookup.is_hit() {
            yalla_obs::global().instant("engine", "analyze (cached)");
        } else {
            timings.analyze = analyze_dur;
        }
        let analysis = &self.analysis.as_ref().expect("refreshed").artifact;
        stages.push(StageOutcome {
            stage: Stage::Analyze,
            lookup,
            duration: timings.analyze,
        });

        // ---- plan -------------------------------------------------------
        let plan_key = {
            let mut h = Fnv64::new();
            h.write_u64(analysis.usage_fingerprint);
            for d in &analysis.predeclare_diags {
                h.write_str(d);
            }
            h.finish()
        };
        let plan_span = yalla_obs::span("engine", "plan");
        let lookup = refresh(&mut self.plan, plan_key, || Ok(stage_plan(analysis, &opts)))?;
        let plan_dur = plan_span.finish();
        note(Stage::Plan, lookup, true);
        if lookup.is_hit() {
            yalla_obs::global().instant("engine", "plan (cached)");
        } else {
            timings.plan = plan_dur;
        }
        let plan = &self.plan.as_ref().expect("refreshed").artifact;
        stages.push(StageOutcome {
            stage: Stage::Plan,
            lookup,
            duration: timings.plan,
        });

        // ---- emit + rewrite (the paper's "generate") --------------------
        let generate_span = yalla_obs::span("engine", "generate");
        let emit_dur;
        {
            let emit_span = yalla_obs::span("engine", "emit");
            let lookup = refresh(&mut self.emit, plan_key, || {
                Ok(EmitArtifact {
                    lightweight: emit::lightweight_header(plan, &opts.header),
                    wrappers: emit::wrappers_file(plan, &opts.header, &opts.lightweight_name),
                })
            })?;
            let dur = emit_span.finish();
            note(Stage::Emit, lookup, true);
            emit_dur = if lookup.is_hit() { Duration::ZERO } else { dur };
            stages.push(StageOutcome {
                stage: Stage::Emit,
                lookup,
                duration: emit_dur,
            });
        }

        // Per-source rewrites: a source's artifact depends on its own text,
        // the text of every *source* file it transitively includes (type
        // information flows along user includes), and the plan.
        let rewrite_span = yalla_obs::span("engine", "rewrite");
        let mut rewrite_keys: Vec<(String, u64)> = Vec::with_capacity(opts.sources.len());
        for s in &opts.sources {
            let id = self.vfs.lookup(s).expect("validated above");
            let mut h = Fnv64::new();
            h.write_u64(plan_key);
            let mut reach: Vec<FileId> =
                crate::engine::reachable_from(id, &parsed.tu.stats.include_edges)
                    .into_iter()
                    .filter(|f| analysis.source_files.contains(f))
                    .collect();
            reach.sort_by_key(|f| f.0);
            if !reach.contains(&id) {
                reach.push(id); // sources absent from the TU still rewrite
            }
            for f in reach {
                h.write_str(self.vfs.path(f));
                h.write_u64(self.vfs.file_hash(f));
            }
            rewrite_keys.push((s.clone(), h.finish()));
        }
        let mut to_compute: Vec<&str> = Vec::new();
        let mut rewrites_cached = 0usize;
        let mut any_invalidated = false;
        for (s, key) in &rewrite_keys {
            match self.rewrites.get(s) {
                Some(slot) if slot.key == *key => {
                    rewrites_cached += 1;
                    note(Stage::Rewrite, CacheLookup::Hit, true);
                }
                existing => {
                    let lookup = if existing.is_some() {
                        any_invalidated = true;
                        CacheLookup::Invalidated
                    } else {
                        CacheLookup::Miss
                    };
                    note(Stage::Rewrite, lookup, true);
                    to_compute.push(s.as_str());
                }
            }
        }
        let rewrites_recomputed = to_compute.len();
        if !to_compute.is_empty() {
            // Independent per-source rewrites run in parallel; each worker
            // gets its own Transformer over the shared plan + table.
            let vfs = &self.vfs;
            let tu = &parsed.tu;
            let table = &analysis.table;
            let opts_ref = &opts;
            let computed: Vec<(String, String)> = std::thread::scope(|scope| {
                let handles: Vec<_> = to_compute
                    .iter()
                    .map(|s| {
                        scope.spawn(move || {
                            (
                                s.to_string(),
                                stage_rewrite_one(vfs, tu, plan, table, opts_ref, s),
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("rewrite worker panicked"))
                    .collect()
            });
            let keys: HashMap<&str, u64> =
                rewrite_keys.iter().map(|(s, k)| (s.as_str(), *k)).collect();
            for (s, text) in computed {
                let key = keys[s.as_str()];
                self.rewrites.insert(
                    s,
                    Slot {
                        key,
                        artifact: text,
                    },
                );
            }
        }
        let rewrite_lookup = if rewrites_recomputed == 0 {
            CacheLookup::Hit
        } else if any_invalidated {
            CacheLookup::Invalidated
        } else {
            CacheLookup::Miss
        };
        let dur = rewrite_span.finish();
        let rewrite_dur = if rewrites_recomputed == 0 {
            yalla_obs::global().instant("engine", "rewrite (cached)");
            Duration::ZERO
        } else {
            dur
        };
        stages.push(StageOutcome {
            stage: Stage::Rewrite,
            lookup: rewrite_lookup,
            duration: rewrite_dur,
        });
        timings.generate = emit_dur + rewrite_dur;
        drop(generate_span);

        let emit_art = &self.emit.as_ref().expect("refreshed").artifact;
        let mut rewritten: BTreeMap<String, String> = BTreeMap::new();
        for s in &opts.sources {
            rewritten.insert(s.clone(), self.rewrites[s].artifact.clone());
        }

        // ---- verify + after-stats ---------------------------------------
        let verify_key = {
            let mut h = Fnv64::new();
            h.write_u64(parsed.closure_hash);
            h.write_u64(plan_key);
            h.write_str(&opts.lightweight_name);
            h.write_str(&opts.wrappers_name);
            h.write_u64(hash::hash_str(&emit_art.lightweight));
            h.write_u64(hash::hash_str(&emit_art.wrappers));
            for (path, text) in &rewritten {
                h.write_str(path);
                h.write_u64(hash::hash_str(text));
            }
            h.write_u64(u64::from(opts.verify));
            h.finish()
        };
        let verify_span = yalla_obs::span("engine", "verify");
        let vfs = &self.vfs;
        let lookup = refresh(&mut self.verify, verify_key, || {
            Ok(stage_verify(vfs, &rewritten, emit_art, &opts, &main_source))
        })?;
        let verify_dur = verify_span.finish();
        note(Stage::Verify, lookup, true);
        if lookup.is_hit() {
            yalla_obs::global().instant("engine", "verify (cached)");
        } else {
            timings.verify = verify_dur;
        }
        let verify_art = &self.verify.as_ref().expect("refreshed").artifact;
        stages.push(StageOutcome {
            stage: Stage::Verify,
            lookup,
            duration: timings.verify,
        });

        // ---- assemble the result ----------------------------------------
        let mut report = Report::from_plan(plan);
        report.before = TuStats {
            loc: parsed.tu.stats.lines_compiled,
            headers: parsed.tu.stats.header_count(),
        };
        report.verification = verify_art.verification.clone();
        if let Some(after) = verify_art.after {
            report.after = after;
        }

        Ok(SessionRun {
            result: SubstitutionResult {
                lightweight_header: emit_art.lightweight.clone(),
                wrappers_file: emit_art.wrappers.clone(),
                rewritten_sources: rewritten,
                plan: plan.clone(),
                report,
                timings,
            },
            stages,
            files_reparsed,
            rewrites_recomputed,
            rewrites_cached,
        })
    }
}

// ---- stage implementations (shared by Session and Engine::run) -----------

/// The analyze stage: symbol table + usage collection + pre-declared
/// symbols (paper §6, Fig. 5 lines 2–10).
fn stage_analyze(
    parsed: &ParsedTu,
    vfs: &Vfs,
    opts: &Options,
) -> Result<AnalysisArtifact, YallaError> {
    let header_file = vfs
        .resolve_include(&opts.header, None, false)
        .map_err(|_| YallaError::HeaderNotIncluded(opts.header.clone()))?;
    if !parsed.stats.headers.contains(&header_file) {
        return Err(YallaError::HeaderNotIncluded(opts.header.clone()));
    }
    let target_files = crate::engine::reachable_from(header_file, &parsed.stats.include_edges);
    let mut source_files: HashSet<FileId> = HashSet::new();
    for s in &opts.sources {
        source_files.insert(vfs.lookup(s).expect("sources validated"));
    }

    let table = SymbolTable::build(&parsed.ast);
    let mut usage = UsageReport::collect(&parsed.ast, &table, &target_files, &source_files);
    // Pre-declared symbols (paper §6): force-listed classes/functions
    // enter the plan as if used, so the lightweight header covers them
    // before the sources grow into them.
    let mut predeclare_diags = Vec::new();
    for key in &opts.extra_symbols {
        match table.resolve(key) {
            Some(sym) if target_files.contains(&sym.file) => match &sym.kind {
                yalla_analysis::symbols::SymbolKind::Class(_) => {
                    usage.classes.entry(sym.key.clone()).or_default();
                }
                yalla_analysis::symbols::SymbolKind::Function(f) => {
                    usage.functions.entry(sym.key.clone()).or_insert_with(|| {
                        yalla_analysis::usage::UsedFunction {
                            key: sym.key.clone(),
                            decl: (**f).clone(),
                            calls: Vec::new(),
                        }
                    });
                }
                other => predeclare_diags.push(format!(
                    "pre-declared symbol `{key}` is a {}, which needs no declaration",
                    other.tag()
                )),
            },
            Some(_) => predeclare_diags.push(format!(
                "pre-declared symbol `{key}` is not defined by `{}`",
                opts.header
            )),
            None => predeclare_diags.push(format!("pre-declared symbol `{key}` not found")),
        }
    }
    let fingerprint = usage_fingerprint(&usage, &table, opts);
    Ok(AnalysisArtifact {
        table,
        usage,
        predeclare_diags,
        target_files,
        source_files,
        usage_fingerprint: fingerprint,
    })
}

/// The plan stage (Fig. 5 lines 11–25) plus diagnostic attachment.
fn stage_plan(analysis: &AnalysisArtifact, opts: &Options) -> Plan {
    let mut plan = Plan::build(&analysis.usage, &analysis.table);
    for message in &analysis.predeclare_diags {
        plan.diagnostics.push(Diagnostic {
            kind: DiagnosticKind::UnknownSymbol,
            message: message.clone(),
            span: None,
        });
    }
    if analysis.usage.is_empty() {
        plan.diagnostics.push(Diagnostic {
            kind: DiagnosticKind::Note,
            message: format!(
                "sources use nothing from `{}`; the include is simply dropped",
                opts.header
            ),
            span: None,
        });
    }
    yalla_obs::count(
        yalla_obs::metrics::names::WRAPPERS_GENERATED,
        (plan.fn_wrappers.len() + plan.method_wrappers.len()) as i64,
    );
    plan
}

/// Rewrites one source file (Fig. 5 lines 26–27, per-source half).
fn stage_rewrite_one(
    vfs: &Vfs,
    parsed: &ParsedTu,
    plan: &Plan,
    table: &SymbolTable,
    opts: &Options,
    source: &str,
) -> String {
    let id = vfs.lookup(source).expect("sources validated");
    let text = vfs.text(id);
    let all_decls: Vec<&yalla_cpp::ast::Decl> = parsed.ast.decls.iter().collect();
    let mut tr = Transformer::new(plan, table);
    rewrite_file(
        id,
        text,
        &opts.header,
        &opts.lightweight_name,
        &all_decls,
        &mut tr,
    )
}

/// The verify stage: parses the substituted program, checks the
/// incomplete-type rules, and gathers the after-substitution TU stats.
fn stage_verify(
    vfs: &Vfs,
    rewritten: &BTreeMap<String, String>,
    emit_art: &EmitArtifact,
    opts: &Options,
    main_source: &str,
) -> VerifyArtifact {
    let verification = if opts.verify {
        verify(
            vfs,
            rewritten,
            &opts.lightweight_name,
            &emit_art.lightweight,
            &opts.wrappers_name,
            &emit_art.wrappers,
            main_source,
        )
    } else {
        Verification::default()
    };
    // After-stats: preprocess the substituted TU.
    let mut after_vfs = vfs.clone();
    for (path, text) in rewritten {
        after_vfs.add_file(path, text.clone());
    }
    after_vfs.add_file(&opts.lightweight_name, emit_art.lightweight.clone());
    let fe = yalla_cpp::Frontend::new(after_vfs);
    let after = fe
        .parse_translation_unit(main_source)
        .ok()
        .map(|after| TuStats {
            loc: after.stats.lines_compiled,
            headers: after.stats.header_count(),
        });
    VerifyArtifact {
        verification,
        after,
    }
}
