//! The Header Substitution rule table (paper, Table 1).
//!
//! Each C++ symbol category maps to the code transformation Header
//! Substitution applies to it. The enum is the executable form of the
//! paper's Table 1; the engine dispatches on it, and the tests in this
//! module assert each row verbatim.

use std::fmt;

/// The symbol categories of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolCategory {
    /// A class or struct.
    ClassOrStruct,
    /// A type alias (`using`/`typedef`).
    TypeAlias,
    /// An enum (scoped or not).
    Enum,
    /// A free function whose signature is fully expressible with
    /// forward-declared types.
    Function,
    /// A free function whose signature involves an incomplete type by
    /// value (return or parameter).
    FunctionWithIncompleteByValue,
    /// A method or data member of a class that will be forward declared.
    ClassMethodOrField,
    /// A lambda passed as a template argument.
    Lambda,
}

/// The transformations of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transformation {
    /// Forward declare and replace by-value usages with pointers.
    ForwardDeclareAndPointerize,
    /// Resolve the alias and forward declare the resolved class.
    ResolveAndForwardDeclare,
    /// Replace usages with the underlying integer type of the enum.
    ReplaceWithUnderlyingType,
    /// Forward declare the function as-is.
    ForwardDeclare,
    /// Create a function wrapper and redirect calls to it.
    CreateFunctionWrapper,
    /// Create a method/field wrapper taking the object as first argument
    /// and redirect usages to it.
    CreateMethodWrapper,
    /// Generate an equivalent functor and replace the lambda with a call
    /// to its constructor.
    LambdaToFunctor,
}

impl fmt::Display for Transformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Transformation::ForwardDeclareAndPointerize => {
                "forward declare and replace usages with pointers"
            }
            Transformation::ResolveAndForwardDeclare => "resolve and forward declare",
            Transformation::ReplaceWithUnderlyingType => {
                "replace usages with the datatype of the size of the enum"
            }
            Transformation::ForwardDeclare => "forward declare",
            Transformation::CreateFunctionWrapper => {
                "create a wrapper and replace usages with calls to the wrapper"
            }
            Transformation::CreateMethodWrapper => {
                "create wrapper with class type as the first argument"
            }
            Transformation::LambdaToFunctor => {
                "create an equivalent functor that overloads the call operator"
            }
        };
        f.write_str(s)
    }
}

/// Table 1: the transformation Header Substitution applies to each symbol
/// category.
pub fn transformation_for(category: SymbolCategory) -> Transformation {
    match category {
        SymbolCategory::ClassOrStruct => Transformation::ForwardDeclareAndPointerize,
        SymbolCategory::TypeAlias => Transformation::ResolveAndForwardDeclare,
        SymbolCategory::Enum => Transformation::ReplaceWithUnderlyingType,
        SymbolCategory::Function => Transformation::ForwardDeclare,
        SymbolCategory::FunctionWithIncompleteByValue => Transformation::CreateFunctionWrapper,
        SymbolCategory::ClassMethodOrField => Transformation::CreateMethodWrapper,
        SymbolCategory::Lambda => Transformation::LambdaToFunctor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_rows() {
        use SymbolCategory as C;
        use Transformation as T;
        assert_eq!(
            transformation_for(C::ClassOrStruct),
            T::ForwardDeclareAndPointerize
        );
        assert_eq!(
            transformation_for(C::TypeAlias),
            T::ResolveAndForwardDeclare
        );
        assert_eq!(transformation_for(C::Enum), T::ReplaceWithUnderlyingType);
        assert_eq!(transformation_for(C::Function), T::ForwardDeclare);
        assert_eq!(
            transformation_for(C::FunctionWithIncompleteByValue),
            T::CreateFunctionWrapper
        );
        assert_eq!(
            transformation_for(C::ClassMethodOrField),
            T::CreateMethodWrapper
        );
        assert_eq!(transformation_for(C::Lambda), T::LambdaToFunctor);
    }

    #[test]
    fn display_matches_paper_wording() {
        assert!(Transformation::ForwardDeclareAndPointerize
            .to_string()
            .contains("pointers"));
        assert!(Transformation::CreateMethodWrapper
            .to_string()
            .contains("first argument"));
        assert!(Transformation::LambdaToFunctor
            .to_string()
            .contains("call operator"));
    }
}
