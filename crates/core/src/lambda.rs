//! Lambda → functor transformation (§3.4).
//!
//! A lambda passed as a template argument has an unutterable type, so a
//! templated wrapper taking it cannot be explicitly instantiated. Header
//! Substitution therefore replaces each such lambda with a generated
//! *functor*: a struct whose fields are the captured variables (with
//! pointerized types where the captured object's class became incomplete)
//! and whose `operator()` holds the lambda body, itself rewritten to call
//! wrappers instead of methods of incomplete classes.
//!
//! Captured variables the body **mutates** become pointer fields: the
//! construction site passes `&var` and body uses dereference — that keeps
//! the generated `operator()` `const` (required since the functor may be
//! passed by value into library templates) while preserving the
//! reference-capture semantics of the original `[&]` lambda.

use std::collections::HashSet;

use yalla_analysis::symbols::SymbolTable;
use yalla_analysis::usage::{LambdaUse, UsageReport};
use yalla_cpp::ast::{
    BinaryOp, Block, Expr, ExprKind, ForInit, QualName, Stmt, StmtKind, Type, UnaryOp,
};

use crate::plan::{mentions_pointerized, pointerize_if_needed, Functor, Plan};
use crate::rewrite::Transformer;

/// Prefix of generated functor names.
pub const FUNCTOR_PREFIX: &str = "yalla_functor_";

/// Builds the functor replacing lambda `lu` (the `index`-th functor).
///
/// The functor's fields are the lambda's captures in first-use order —
/// this fixes the field order that the construction-site `{...}`
/// initializer list must follow.
pub fn make_functor(
    index: usize,
    lu: &LambdaUse,
    plan: &Plan,
    table: &SymbolTable,
    _usage: &UsageReport,
) -> Functor {
    let name = format!("{FUNCTOR_PREFIX}{index}");

    // Which captures does the body assign to?
    let mut mutated = HashSet::new();
    collect_mutated(&lu.lambda.body.stmts, &mut mutated);
    // Only captures of *scalar / non-pointerized* values need the pointer
    // treatment: objects of pointerized classes already become pointers
    // and mutate shared state through wrappers.
    let mutated_captures: HashSet<String> = lu
        .captured
        .iter()
        .filter(|(n, t)| {
            mutated.contains(n)
                && t.is_by_value()
                && !mentions_pointerized(t, &plan.pointerized_classes, table)
        })
        .map(|(n, _)| n.clone())
        .collect();

    let fields: Vec<(String, Type)> = lu
        .captured
        .iter()
        .map(|(n, t)| {
            let ty = if mutated_captures.contains(n) {
                Type::pointer(t.clone())
            } else {
                pointerize_if_needed(t, &plan.pointerized_classes, table)
            };
            (n.clone(), ty)
        })
        .collect();

    // Rewrite the body: method/operator calls on captured objects go
    // through wrappers, and mutated captures read through their pointer.
    let mut tr = Transformer::new(plan, table);
    tr.push_scope(fields.iter().map(|(n, t)| (n.clone(), t.clone())));
    tr.push_scope(
        lu.lambda
            .params
            .iter()
            .filter(|(_, n)| !n.is_empty())
            .map(|(t, n)| (n.clone(), t.clone())),
    );
    let body = Block {
        stmts: lu
            .lambda
            .body
            .stmts
            .iter()
            .map(|s| {
                let transformed = tr.transform_stmt(s);
                deref_mutated_stmt(&transformed, &mutated_captures)
            })
            .collect(),
        span: lu.lambda.body.span,
    };
    tr.pop_scope();
    tr.pop_scope();

    Functor {
        name,
        fields,
        mutated_captures,
        params: lu.lambda.params.clone(),
        body,
        span: lu.span,
    }
}

/// Collects the names assigned (or incremented) anywhere in `stmts`.
fn collect_mutated(stmts: &[Stmt], out: &mut HashSet<String>) {
    fn expr(e: &Expr, out: &mut HashSet<String>) {
        match &e.kind {
            ExprKind::Binary { op, lhs, rhs } => {
                if op.is_assignment() {
                    if let Some(n) = lhs.as_name() {
                        if n.segs.len() == 1 {
                            out.insert(n.segs[0].ident.clone());
                        }
                    }
                }
                expr(lhs, out);
                expr(rhs, out);
            }
            ExprKind::Unary { op, expr: inner } => {
                if matches!(
                    op,
                    UnaryOp::PreInc | UnaryOp::PostInc | UnaryOp::PreDec | UnaryOp::PostDec
                ) {
                    if let Some(n) = inner.as_name() {
                        if n.segs.len() == 1 {
                            out.insert(n.segs[0].ident.clone());
                        }
                    }
                }
                expr(inner, out);
            }
            ExprKind::Call { callee, args } => {
                expr(callee, out);
                for a in args {
                    expr(a, out);
                }
            }
            ExprKind::Conditional {
                cond,
                then_expr,
                else_expr,
            } => {
                expr(cond, out);
                expr(then_expr, out);
                expr(else_expr, out);
            }
            ExprKind::Member { base, .. } => expr(base, out),
            ExprKind::Index { base, index } => {
                expr(base, out);
                expr(index, out);
            }
            ExprKind::Paren(inner) | ExprKind::Cast { expr: inner, .. } => expr(inner, out),
            ExprKind::Lambda(l) => collect_mutated(&l.body.stmts, out),
            ExprKind::New { args, .. } | ExprKind::BraceInit { args, .. } => {
                for a in args {
                    expr(a, out);
                }
            }
            _ => {}
        }
    }
    for s in stmts {
        match &s.kind {
            StmtKind::Expr(e) => expr(e, out),
            StmtKind::Decl(v) => {
                if let Some(i) = &v.init {
                    expr(i, out);
                }
            }
            StmtKind::Block(b) => collect_mutated(&b.stmts, out),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                expr(cond, out);
                collect_mutated(std::slice::from_ref(then_branch), out);
                if let Some(e) = else_branch {
                    collect_mutated(std::slice::from_ref(e), out);
                }
            }
            StmtKind::For {
                init,
                cond,
                inc,
                body,
            } => {
                match init.as_ref() {
                    ForInit::Decl(v) => {
                        if let Some(i) = &v.init {
                            expr(i, out);
                        }
                    }
                    ForInit::Expr(e) => expr(e, out),
                    ForInit::Empty => {}
                }
                if let Some(c) = cond {
                    expr(c, out);
                }
                if let Some(i) = inc {
                    expr(i, out);
                }
                collect_mutated(std::slice::from_ref(body), out);
            }
            StmtKind::RangeFor { range, body, .. } => {
                expr(range, out);
                collect_mutated(std::slice::from_ref(body), out);
            }
            StmtKind::While { cond, body } => {
                expr(cond, out);
                collect_mutated(std::slice::from_ref(body), out);
            }
            StmtKind::DoWhile { body, cond } => {
                collect_mutated(std::slice::from_ref(body), out);
                expr(cond, out);
            }
            StmtKind::Return(Some(e)) => expr(e, out),
            _ => {}
        }
    }
}

/// Rewrites uses of mutated captures to `(*name)` in a statement tree.
fn deref_mutated_stmt(stmt: &Stmt, mutated: &HashSet<String>) -> Stmt {
    if mutated.is_empty() {
        return stmt.clone();
    }
    let kind = match &stmt.kind {
        StmtKind::Expr(e) => StmtKind::Expr(deref_mutated_expr(e, mutated)),
        StmtKind::Decl(v) => {
            let mut v = v.clone();
            if let Some(i) = &mut v.init {
                *i = deref_mutated_expr(i, mutated);
            }
            StmtKind::Decl(v)
        }
        StmtKind::Block(b) => StmtKind::Block(Block {
            stmts: b
                .stmts
                .iter()
                .map(|s| deref_mutated_stmt(s, mutated))
                .collect(),
            span: b.span,
        }),
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => StmtKind::If {
            cond: deref_mutated_expr(cond, mutated),
            then_branch: Box::new(deref_mutated_stmt(then_branch, mutated)),
            else_branch: else_branch
                .as_ref()
                .map(|e| Box::new(deref_mutated_stmt(e, mutated))),
        },
        StmtKind::For {
            init,
            cond,
            inc,
            body,
        } => StmtKind::For {
            init: Box::new(match init.as_ref() {
                ForInit::Decl(v) => {
                    let mut v = v.clone();
                    if let Some(i) = &mut v.init {
                        *i = deref_mutated_expr(i, mutated);
                    }
                    ForInit::Decl(v)
                }
                ForInit::Expr(e) => ForInit::Expr(deref_mutated_expr(e, mutated)),
                ForInit::Empty => ForInit::Empty,
            }),
            cond: cond.as_ref().map(|e| deref_mutated_expr(e, mutated)),
            inc: inc.as_ref().map(|e| deref_mutated_expr(e, mutated)),
            body: Box::new(deref_mutated_stmt(body, mutated)),
        },
        StmtKind::RangeFor { var, range, body } => StmtKind::RangeFor {
            var: var.clone(),
            range: deref_mutated_expr(range, mutated),
            body: Box::new(deref_mutated_stmt(body, mutated)),
        },
        StmtKind::While { cond, body } => StmtKind::While {
            cond: deref_mutated_expr(cond, mutated),
            body: Box::new(deref_mutated_stmt(body, mutated)),
        },
        StmtKind::DoWhile { body, cond } => StmtKind::DoWhile {
            body: Box::new(deref_mutated_stmt(body, mutated)),
            cond: deref_mutated_expr(cond, mutated),
        },
        StmtKind::Return(e) => StmtKind::Return(e.as_ref().map(|e| deref_mutated_expr(e, mutated))),
        other => other.clone(),
    };
    Stmt::new(kind, stmt.span)
}

fn deref_mutated_expr(expr: &Expr, mutated: &HashSet<String>) -> Expr {
    let kind = match &expr.kind {
        ExprKind::Name(n) if n.segs.len() == 1 && mutated.contains(&n.segs[0].ident) => {
            // name → (*name)
            ExprKind::Paren(Box::new(Expr::new(
                ExprKind::Unary {
                    op: UnaryOp::Deref,
                    expr: Box::new(Expr::new(
                        ExprKind::Name(QualName::ident(n.segs[0].ident.clone())),
                        expr.span,
                    )),
                },
                expr.span,
            )))
        }
        ExprKind::Unary { op, expr: e } => ExprKind::Unary {
            op: *op,
            expr: Box::new(deref_mutated_expr(e, mutated)),
        },
        ExprKind::Binary { op, lhs, rhs } => ExprKind::Binary {
            op: *op,
            lhs: Box::new(deref_mutated_expr(lhs, mutated)),
            rhs: Box::new(deref_mutated_expr(rhs, mutated)),
        },
        ExprKind::Conditional {
            cond,
            then_expr,
            else_expr,
        } => ExprKind::Conditional {
            cond: Box::new(deref_mutated_expr(cond, mutated)),
            then_expr: Box::new(deref_mutated_expr(then_expr, mutated)),
            else_expr: Box::new(deref_mutated_expr(else_expr, mutated)),
        },
        ExprKind::Call { callee, args } => ExprKind::Call {
            // The callee itself is left alone: calling through a mutated
            // scalar is not in the subset.
            callee: callee.clone(),
            args: args
                .iter()
                .map(|a| deref_mutated_expr(a, mutated))
                .collect(),
        },
        ExprKind::Member {
            base,
            arrow,
            member,
        } => ExprKind::Member {
            base: Box::new(deref_mutated_expr(base, mutated)),
            arrow: *arrow,
            member: member.clone(),
        },
        ExprKind::Index { base, index } => ExprKind::Index {
            base: Box::new(deref_mutated_expr(base, mutated)),
            index: Box::new(deref_mutated_expr(index, mutated)),
        },
        ExprKind::Paren(e) => ExprKind::Paren(Box::new(deref_mutated_expr(e, mutated))),
        ExprKind::BraceInit { ty, args } => ExprKind::BraceInit {
            ty: ty.clone(),
            args: args
                .iter()
                .map(|a| deref_mutated_expr(a, mutated))
                .collect(),
        },
        other => other.clone(),
    };
    Expr::new(kind, expr.span)
}

/// The `+=`-style operators count as assignments for capture analysis.
#[allow(dead_code)]
fn is_assign(op: BinaryOp) -> bool {
    op.is_assignment()
}
