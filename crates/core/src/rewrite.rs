//! Source rewriting: the code transformations of §3.3.
//!
//! Two layers:
//!
//! * [`Transformer`] — a pure AST→AST mapping that redirects call sites to
//!   wrappers, pointerizes declarations of now-incomplete classes,
//!   replaces enum constants with literals, and swaps lambdas for functor
//!   construction;
//! * [`apply_edits`] / [`rewrite_file`] — text splicing that writes those
//!   transformations back into the user's files at statement granularity,
//!   keyed by byte spans (the same strategy as Clang's `Rewriter`).

use std::collections::HashMap;

use yalla_analysis::aliases::AliasResolver;
use yalla_analysis::symbols::{SymbolKind, SymbolTable};
use yalla_cpp::ast::{
    Decl, DeclKind, Expr, ExprKind, ForInit, NameSeg, QualName, Stmt, StmtKind, Type, VarDecl,
};
use yalla_cpp::loc::{FileId, Span};
use yalla_cpp::pretty;

use crate::plan::{MemberKind, Plan};

/// One text replacement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edit {
    /// Byte range to replace.
    pub span: Span,
    /// Replacement text.
    pub replacement: String,
}

/// Applies `edits` to `text`. Edits contained inside another edit are
/// dropped (the outer edit's replacement already reflects the inner
/// transformation, because transformations are computed on whole
/// statements). Remaining edits must be non-overlapping.
pub fn apply_edits(text: &str, mut edits: Vec<Edit>) -> String {
    edits.sort_by_key(|e| (e.span.start, std::cmp::Reverse(e.span.end)));
    // Drop edits contained in an earlier (larger) edit.
    let mut kept: Vec<Edit> = Vec::with_capacity(edits.len());
    for e in edits {
        if let Some(prev) = kept.last() {
            if e.span.start >= prev.span.start && e.span.end <= prev.span.end {
                continue;
            }
        }
        kept.push(e);
    }
    let mut out = String::with_capacity(text.len());
    let mut cursor = 0usize;
    for e in kept {
        let start = e.span.start as usize;
        let end = e.span.end as usize;
        if start < cursor || end > text.len() {
            continue; // overlapping or out-of-range edit: skip defensively
        }
        out.push_str(&text[cursor..start]);
        out.push_str(&e.replacement);
        cursor = end;
    }
    out.push_str(&text[cursor..]);
    out
}

/// The AST transformer implementing Table 1's usage rewrites.
pub struct Transformer<'p> {
    plan: &'p Plan,
    table: &'p SymbolTable,
    /// Lexical scopes (name → declared type as written).
    scopes: Vec<HashMap<String, Type>>,
    /// Wrapper lookup: function key → wrapper name.
    fn_wrapper_names: HashMap<String, String>,
    /// Wrapper lookup: (class key, member) → (wrapper name, kind).
    member_wrappers: HashMap<(String, String), (String, MemberKind)>,
    /// Enum constants: (enum key, constant) → value; plus enum key → underlying.
    enum_constants: HashMap<(String, String), i64>,
    /// Functors by lambda span.
    functors_by_span: HashMap<Span, usize>,
    /// Whether anything changed during the last transformation.
    changed: bool,
}

impl<'p> Transformer<'p> {
    /// Creates a transformer for `plan`.
    pub fn new(plan: &'p Plan, table: &'p SymbolTable) -> Self {
        let fn_wrapper_names = plan
            .fn_wrappers
            .iter()
            .map(|w| (w.original_key.clone(), w.wrapper_name.clone()))
            .collect();
        let member_wrappers = plan
            .method_wrappers
            .iter()
            .map(|w| {
                (
                    (w.class_key.clone(), w.member.clone()),
                    (w.wrapper_name.clone(), w.kind),
                )
            })
            .collect();
        let mut enum_constants = HashMap::new();
        for e in &plan.enums {
            for (name, value) in &e.constants {
                enum_constants.insert((e.key.clone(), name.clone()), *value);
            }
        }
        let functors_by_span = plan
            .functors
            .iter()
            .enumerate()
            .map(|(i, f)| (f.span, i))
            .collect();
        Transformer {
            plan,
            table,
            scopes: Vec::new(),
            fn_wrapper_names,
            member_wrappers,
            enum_constants,
            functors_by_span,
            changed: false,
        }
    }

    /// Pushes a scope of known variable types (captures, params).
    pub fn push_scope(&mut self, vars: impl IntoIterator<Item = (String, Type)>) {
        self.scopes.push(vars.into_iter().collect());
    }

    /// Pops the innermost scope.
    pub fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn lookup(&self, name: &str) -> Option<&Type> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    /// True if the most recent `transform_*` call changed anything.
    pub fn took_effect(&self) -> bool {
        self.changed
    }

    /// The class key a written type resolves to, through aliases.
    fn class_key_of(&self, ty: &Type) -> Option<String> {
        let aliases = AliasResolver::new(self.table);
        let resolved = aliases.resolve_type(ty);
        let core = resolved.core_name()?;
        aliases
            .resolve_key_to_class(&core.key())
            .or_else(|| self.table.resolve(&core.key()).map(|s| s.key.clone()))
    }

    /// Rewrites a variable declaration: pointerize the type when it is a
    /// by-value use of a pointerized class; swap enum types for their
    /// underlying type.
    pub fn transform_var_decl(&mut self, v: &VarDecl) -> VarDecl {
        let mut out = v.clone();
        if out.ty.is_by_value() {
            if let Some(key) = self.class_key_of(&out.ty) {
                if self.plan.pointerized_classes.contains(&key) {
                    out.ty = Type::pointer(out.ty.clone());
                    self.changed = true;
                }
            }
            if let Some(u) = self.enum_underlying(&out.ty) {
                out.ty = u;
                self.changed = true;
            }
        }
        if let Some(init) = &mut out.init {
            *init = self.transform_expr(init);
        }
        out
    }

    fn enum_underlying(&self, ty: &Type) -> Option<Type> {
        let core = ty.core_name()?;
        let sym = self.table.resolve(&core.key())?;
        let e = self.plan.enums.iter().find(|e| e.key == sym.key)?;
        let parsed = yalla_cpp::parse::parse_str(&format!("{} __x;", e.underlying)).ok()?;
        match &parsed.decls.first()?.kind {
            DeclKind::Variable(v) => Some(v.ty.clone()),
            _ => None,
        }
    }

    /// Rewrites a statement tree.
    pub fn transform_stmt(&mut self, stmt: &Stmt) -> Stmt {
        let kind = match &stmt.kind {
            StmtKind::Expr(e) => StmtKind::Expr(self.transform_expr(e)),
            StmtKind::Decl(v) => {
                let nv = self.transform_var_decl(v);
                if let Some(scope) = self.scopes.last_mut() {
                    scope.insert(v.name.clone(), v.ty.clone());
                }
                StmtKind::Decl(nv)
            }
            StmtKind::Block(b) => {
                self.scopes.push(HashMap::new());
                let stmts = b.stmts.iter().map(|s| self.transform_stmt(s)).collect();
                self.scopes.pop();
                StmtKind::Block(yalla_cpp::ast::Block {
                    stmts,
                    span: b.span,
                })
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => StmtKind::If {
                cond: self.transform_expr(cond),
                then_branch: Box::new(self.transform_stmt(then_branch)),
                else_branch: else_branch
                    .as_ref()
                    .map(|e| Box::new(self.transform_stmt(e))),
            },
            StmtKind::For {
                init,
                cond,
                inc,
                body,
            } => {
                self.scopes.push(HashMap::new());
                let init = match init.as_ref() {
                    ForInit::Decl(v) => {
                        let nv = self.transform_var_decl(v);
                        if let Some(scope) = self.scopes.last_mut() {
                            scope.insert(v.name.clone(), v.ty.clone());
                        }
                        ForInit::Decl(nv)
                    }
                    ForInit::Expr(e) => ForInit::Expr(self.transform_expr(e)),
                    ForInit::Empty => ForInit::Empty,
                };
                let out = StmtKind::For {
                    init: Box::new(init),
                    cond: cond.as_ref().map(|e| self.transform_expr(e)),
                    inc: inc.as_ref().map(|e| self.transform_expr(e)),
                    body: Box::new(self.transform_stmt(body)),
                };
                self.scopes.pop();
                out
            }
            StmtKind::RangeFor { var, range, body } => {
                self.scopes.push(HashMap::new());
                let nv = self.transform_var_decl(var);
                if let Some(scope) = self.scopes.last_mut() {
                    scope.insert(var.name.clone(), var.ty.clone());
                }
                let out = StmtKind::RangeFor {
                    var: nv,
                    range: self.transform_expr(range),
                    body: Box::new(self.transform_stmt(body)),
                };
                self.scopes.pop();
                out
            }
            StmtKind::While { cond, body } => StmtKind::While {
                cond: self.transform_expr(cond),
                body: Box::new(self.transform_stmt(body)),
            },
            StmtKind::DoWhile { body, cond } => StmtKind::DoWhile {
                body: Box::new(self.transform_stmt(body)),
                cond: self.transform_expr(cond),
            },
            StmtKind::Return(e) => StmtKind::Return(e.as_ref().map(|e| self.transform_expr(e))),
            other => other.clone(),
        };
        Stmt::new(kind, stmt.span)
    }

    /// Rewrites an expression tree.
    pub fn transform_expr(&mut self, expr: &Expr) -> Expr {
        let kind = match &expr.kind {
            ExprKind::Call { callee, args } => return self.transform_call(expr, callee, args),
            ExprKind::Member {
                base,
                arrow,
                member,
            } => {
                // Bare field access via wrapper.
                if let Some(class_key) = self.infer_type(base).and_then(|t| self.class_key_of(&t)) {
                    if let Some((wname, MemberKind::Field)) = self
                        .member_wrappers
                        .get(&(class_key.clone(), member.ident.clone()))
                        .cloned()
                    {
                        self.changed = true;
                        let new_base = self.transform_expr(base);
                        return Expr::new(
                            ExprKind::Call {
                                callee: Box::new(Expr::new(
                                    ExprKind::Name(QualName::ident(wname)),
                                    expr.span,
                                )),
                                args: vec![new_base],
                            },
                            expr.span,
                        );
                    }
                }
                ExprKind::Member {
                    base: Box::new(self.transform_expr(base)),
                    arrow: *arrow,
                    member: member.clone(),
                }
            }
            ExprKind::Name(n) => {
                // Enum constant → literal: `Enum::CONST` or, for unscoped
                // enums, `Namespace::CONST`.
                if n.segs.len() >= 2 {
                    let prefix = QualName {
                        global: n.global,
                        segs: n.segs[..n.segs.len() - 1].to_vec(),
                    };
                    let base = n.base_ident().to_string();
                    if let Some(sym) = self.table.resolve(&prefix.key()) {
                        if let Some(v) = self.enum_constants.get(&(sym.key.clone(), base.clone())) {
                            self.changed = true;
                            return Expr::new(ExprKind::Int(*v), expr.span);
                        }
                        // Unscoped-enum constant through the namespace: any
                        // replaced enum directly inside `prefix`.
                        let ns = sym.key.clone();
                        if let Some(v) = self.enum_constants.iter().find_map(|((ek, c), v)| {
                            let parent = ek.rsplit_once("::").map(|(p, _)| p).unwrap_or("");
                            (parent == ns && *c == base).then_some(*v)
                        }) {
                            self.changed = true;
                            return Expr::new(ExprKind::Int(v), expr.span);
                        }
                    }
                }
                ExprKind::Name(n.clone())
            }
            ExprKind::Lambda(_) => {
                // Lambda replaced by functor construction.
                if let Some(&idx) = self.functors_by_span.get(&expr.span) {
                    let functor = &self.plan.functors[idx];
                    self.changed = true;
                    let args: Vec<Expr> = functor
                        .fields
                        .iter()
                        .map(|(name, _)| {
                            let base =
                                Expr::new(ExprKind::Name(QualName::ident(name.clone())), expr.span);
                            if functor.mutated_captures.contains(name) {
                                // Mutated captures are pointer fields:
                                // pass the variable's address.
                                Expr::new(
                                    ExprKind::Unary {
                                        op: yalla_cpp::ast::UnaryOp::AddrOf,
                                        expr: Box::new(base),
                                    },
                                    expr.span,
                                )
                            } else {
                                base
                            }
                        })
                        .collect();
                    return Expr::new(
                        ExprKind::BraceInit {
                            ty: Some(Type::named(QualName::ident(functor.name.clone()))),
                            args,
                        },
                        expr.span,
                    );
                }
                expr.kind.clone()
            }
            ExprKind::Unary { op, expr: e } => ExprKind::Unary {
                op: *op,
                expr: Box::new(self.transform_expr(e)),
            },
            ExprKind::Binary { op, lhs, rhs } => ExprKind::Binary {
                op: *op,
                lhs: Box::new(self.transform_expr(lhs)),
                rhs: Box::new(self.transform_expr(rhs)),
            },
            ExprKind::Conditional {
                cond,
                then_expr,
                else_expr,
            } => ExprKind::Conditional {
                cond: Box::new(self.transform_expr(cond)),
                then_expr: Box::new(self.transform_expr(then_expr)),
                else_expr: Box::new(self.transform_expr(else_expr)),
            },
            ExprKind::Index { base, index } => ExprKind::Index {
                base: Box::new(self.transform_expr(base)),
                index: Box::new(self.transform_expr(index)),
            },
            ExprKind::Paren(e) => ExprKind::Paren(Box::new(self.transform_expr(e))),
            ExprKind::Cast { kind, ty, expr: e } => {
                let new_ty = self.enum_underlying(ty).unwrap_or_else(|| ty.clone());
                ExprKind::Cast {
                    kind: kind.clone(),
                    ty: new_ty,
                    expr: Box::new(self.transform_expr(e)),
                }
            }
            ExprKind::New { ty, args } => ExprKind::New {
                ty: ty.clone(),
                args: args.iter().map(|a| self.transform_expr(a)).collect(),
            },
            ExprKind::BraceInit { ty, args } => ExprKind::BraceInit {
                ty: ty.clone(),
                args: args.iter().map(|a| self.transform_expr(a)).collect(),
            },
            ExprKind::Delete { array, expr: e } => ExprKind::Delete {
                array: *array,
                expr: Box::new(self.transform_expr(e)),
            },
            other => other.clone(),
        };
        Expr::new(kind, expr.span)
    }

    fn transform_call(&mut self, whole: &Expr, callee: &Expr, args: &[Expr]) -> Expr {
        // Method call via member access.
        if let ExprKind::Member { base, member, .. } = &callee.kind {
            if let Some(class_key) = self.infer_type(base).and_then(|t| self.class_key_of(&t)) {
                if let Some((wname, _)) = self
                    .member_wrappers
                    .get(&(class_key.clone(), member.ident.clone()))
                    .cloned()
                {
                    self.changed = true;
                    let mut new_args = vec![self.transform_expr(base)];
                    new_args.extend(args.iter().map(|a| self.transform_expr(a)));
                    return Expr::new(
                        ExprKind::Call {
                            callee: Box::new(Expr::new(
                                ExprKind::Name(QualName::ident(wname)),
                                callee.span,
                            )),
                            args: new_args,
                        },
                        whole.span,
                    );
                }
            }
        }
        // Call-operator call on a known object, or wrapped free function.
        if let ExprKind::Name(n) = &callee.kind {
            if n.segs.len() == 1 {
                if let Some(ty) = self.lookup(&n.segs[0].ident).cloned() {
                    if let Some(class_key) = self.class_key_of(&ty) {
                        if let Some((wname, MemberKind::CallOperator)) = self
                            .member_wrappers
                            .get(&(class_key.clone(), "operator()".to_string()))
                            .cloned()
                        {
                            self.changed = true;
                            let mut new_args =
                                vec![Expr::new(ExprKind::Name(n.clone()), callee.span)];
                            new_args.extend(args.iter().map(|a| self.transform_expr(a)));
                            return Expr::new(
                                ExprKind::Call {
                                    callee: Box::new(Expr::new(
                                        ExprKind::Name(QualName::ident(wname)),
                                        callee.span,
                                    )),
                                    args: new_args,
                                },
                                whole.span,
                            );
                        }
                    }
                }
            }
            // Free function with a wrapper.
            if let Some(sym) = self.table.resolve(&n.key()) {
                if let Some(wname) = self.fn_wrapper_names.get(&sym.key).cloned() {
                    self.changed = true;
                    // The wrapper lives at global scope; keep any explicit
                    // template args from the original call.
                    let new_callee = QualName {
                        global: false,
                        segs: vec![NameSeg {
                            ident: wname,
                            args: n.last().args.clone(),
                        }],
                    };
                    let new_args: Vec<Expr> = args.iter().map(|a| self.transform_expr(a)).collect();
                    return Expr::new(
                        ExprKind::Call {
                            callee: Box::new(Expr::new(ExprKind::Name(new_callee), callee.span)),
                            args: new_args,
                        },
                        whole.span,
                    );
                }
            }
        }
        Expr::new(
            ExprKind::Call {
                callee: Box::new(self.transform_expr(callee)),
                args: args.iter().map(|a| self.transform_expr(a)).collect(),
            },
            whole.span,
        )
    }

    /// Minimal local type inference (mirrors the analysis collector).
    fn infer_type(&self, expr: &Expr) -> Option<Type> {
        match &expr.kind {
            ExprKind::Name(n) => {
                if n.segs.len() == 1 {
                    if let Some(t) = self.lookup(&n.segs[0].ident) {
                        return Some(t.clone());
                    }
                }
                match &self.table.resolve(&n.key())?.kind {
                    SymbolKind::Variable(t) => Some((**t).clone()),
                    _ => None,
                }
            }
            ExprKind::Paren(e) => self.infer_type(e),
            ExprKind::Unary { op, expr: e } => {
                let t = self.infer_type(e)?;
                match op {
                    yalla_cpp::ast::UnaryOp::Deref => match t.kind {
                        yalla_cpp::ast::TypeKind::Pointer(inner) => Some(*inner),
                        _ => Some(t),
                    },
                    yalla_cpp::ast::UnaryOp::AddrOf => Some(Type::pointer(t)),
                    _ => Some(t),
                }
            }
            ExprKind::Member { base, member, .. } => {
                let class_key = self.infer_type(base).and_then(|t| self.class_key_of(&t))?;
                match &self.table.get(&class_key)?.kind {
                    SymbolKind::Class(c) => c
                        .fields()
                        .find(|(_, f)| f.name == member.ident)
                        .map(|(_, f)| f.ty.clone()),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

/// Rewrites one source file: swaps the `#include` of `header_name` for the
/// lightweight header, and applies the transformer at statement/member
/// granularity for every declaration belonging to `file`.
pub fn rewrite_file(
    file: FileId,
    text: &str,
    header_name: &str,
    lightweight_name: &str,
    decls: &[&Decl],
    transformer: &mut Transformer<'_>,
) -> String {
    let mut edits = Vec::new();
    // 1. Replace the include directive (textual scan).
    for (start, line) in line_offsets(text) {
        let trimmed = line.trim_start();
        if !trimmed.starts_with('#') {
            continue;
        }
        let rest = trimmed[1..].trim_start();
        if !rest.starts_with("include") {
            continue;
        }
        if line.contains(&format!("<{header_name}>"))
            || line.contains(&format!("\"{header_name}\""))
            || header_basename_matches(line, header_name)
        {
            let span = Span::new(file, start as u32, (start + line.len()) as u32);
            edits.push(Edit {
                span,
                replacement: format!("#include \"{lightweight_name}\""),
            });
        }
    }
    // 2. Transform declarations.
    for decl in decls {
        collect_decl_edits(decl, file, transformer, &mut edits);
    }
    yalla_obs::count(
        yalla_obs::metrics::names::REWRITES_APPLIED,
        edits.len() as i64,
    );
    apply_edits(text, edits)
}

fn header_basename_matches(line: &str, header_name: &str) -> bool {
    let base = header_name.rsplit('/').next().unwrap_or(header_name);
    (line.contains(&format!("/{base}>")) || line.contains(&format!("/{base}\"")))
        && (line.contains('<') || line.contains('"'))
}

fn line_offsets(text: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start = 0;
    for line in text.split_inclusive('\n') {
        out.push((start, line.trim_end_matches(['\n', '\r'])));
        start += line.len();
    }
    out
}

fn collect_decl_edits(decl: &Decl, file: FileId, tr: &mut Transformer<'_>, edits: &mut Vec<Edit>) {
    match &decl.kind {
        DeclKind::Namespace(ns) => {
            for d in &ns.decls {
                collect_decl_edits(d, file, tr, edits);
            }
        }
        DeclKind::Class(c) => {
            for m in &c.members {
                if m.decl.span.file != file {
                    continue;
                }
                match &m.decl.kind {
                    DeclKind::Variable(v) => {
                        let nv = tr.transform_var_decl(v);
                        if nv != *v {
                            let mut text = pretty_var(&nv);
                            text.push(';');
                            edits.push(Edit {
                                span: m.decl.span,
                                replacement: text,
                            });
                        }
                    }
                    DeclKind::Function(f) => {
                        collect_function_edits(f, &m.decl, file, Some(c), tr, edits);
                    }
                    _ => {}
                }
            }
        }
        DeclKind::Function(f) => {
            if decl.span.file != file {
                return;
            }
            // Out-of-line method definitions get the owning class's fields
            // in scope.
            let class =
                f.qualifier
                    .as_ref()
                    .and_then(|q| match &tr.table.resolve(&q.key())?.kind {
                        SymbolKind::Class(c) => Some((**c).clone()),
                        _ => None,
                    });
            collect_function_edits(f, decl, file, class.as_ref(), tr, edits);
        }
        DeclKind::Variable(v) => {
            if decl.span.file != file {
                return;
            }
            let nv = tr.transform_var_decl(v);
            if nv != *v {
                let mut text = pretty_var(&nv);
                text.push(';');
                edits.push(Edit {
                    span: decl.span,
                    replacement: text,
                });
            }
        }
        DeclKind::Alias(a) => {
            if decl.span.file != file {
                return;
            }
            // Aliases whose target goes through a *nested* member alias
            // must be re-pointed at the resolved (non-nested) class — the
            // paper's member_type rewrite (Figure 4b line 8).
            let aliases = AliasResolver::new(tr.table);
            if let Some(core) = a.target.core_name() {
                if let Some(sym) = tr.table.resolve(&core.key()) {
                    if sym.nested_in_class {
                        let resolved = aliases.resolve_type(&a.target);
                        if resolved != a.target {
                            edits.push(Edit {
                                span: decl.span,
                                replacement: format!("using {} = {};", a.name, resolved),
                            });
                        }
                    }
                }
            }
        }
        _ => {}
    }
}

fn collect_function_edits(
    f: &yalla_cpp::ast::FunctionDecl,
    decl: &Decl,
    _file: FileId,
    class: Option<&yalla_cpp::ast::ClassDecl>,
    tr: &mut Transformer<'_>,
    edits: &mut Vec<Edit>,
) {
    let Some(body) = &f.body else { return };
    let mut scope: Vec<(String, Type)> = Vec::new();
    if let Some(c) = class {
        for (_, field) in c.fields() {
            // Fields are seen *post-transformation*: pointerized classes
            // have pointer-typed fields by the time this body compiles.
            let transformed = tr.transform_var_decl(field);
            scope.push((field.name.clone(), transformed.ty));
        }
    }
    for p in &f.params {
        if !p.name.is_empty() {
            scope.push((p.name.clone(), p.ty.clone()));
        }
    }
    tr.push_scope(scope);
    for stmt in &body.stmts {
        let new_stmt = tr.transform_stmt(stmt);
        if new_stmt != *stmt {
            let rendered = pretty::print_stmt(&new_stmt);
            edits.push(Edit {
                span: stmt.span,
                replacement: rendered.trim_end().to_string(),
            });
        }
    }
    tr.pop_scope();
    let _ = decl;
}

fn pretty_var(v: &VarDecl) -> String {
    // Reuse the pretty printer through a wrapping declaration.
    let d = Decl::new(DeclKind::Variable(v.clone()), Span::dummy());
    pretty::print_decl(&d)
        .trim_end()
        .trim_end_matches(';')
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_edits_basic() {
        let text = "hello cruel world";
        let edits = vec![Edit {
            span: Span::new(FileId(0), 6, 11),
            replacement: "kind".into(),
        }];
        assert_eq!(apply_edits(text, edits), "hello kind world");
    }

    #[test]
    fn apply_edits_multiple_out_of_order() {
        let text = "a b c";
        let edits = vec![
            Edit {
                span: Span::new(FileId(0), 4, 5),
                replacement: "C".into(),
            },
            Edit {
                span: Span::new(FileId(0), 0, 1),
                replacement: "A".into(),
            },
        ];
        assert_eq!(apply_edits(text, edits), "A b C");
    }

    #[test]
    fn contained_edits_are_dropped() {
        let text = "f(g(x))";
        let edits = vec![
            Edit {
                span: Span::new(FileId(0), 0, 7),
                replacement: "F(G(X))".into(),
            },
            Edit {
                span: Span::new(FileId(0), 2, 6),
                replacement: "IGNORED".into(),
            },
        ];
        assert_eq!(apply_edits(text, edits), "F(G(X))");
    }

    #[test]
    fn insertion_via_empty_span() {
        let text = "int x;";
        let edits = vec![Edit {
            span: Span::new(FileId(0), 3, 3),
            replacement: "*".into(),
        }];
        assert_eq!(apply_edits(text, edits), "int* x;");
    }

    #[test]
    fn line_offsets_cover_whole_text() {
        let text = "a\nbb\n\nccc";
        let lines = line_offsets(text);
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], (0, "a"));
        assert_eq!(lines[1], (2, "bb"));
        assert_eq!(lines[3], (6, "ccc"));
    }
}
