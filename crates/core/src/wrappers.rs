//! Wrapper synthesis: function wrappers (§3.2.2) and method/field wrappers
//! (§3.2.3).
//!
//! A *function wrapper* `f_w` shadows a function `f` whose signature uses
//! a soon-to-be-incomplete class by value: an incomplete return type
//! becomes a pointer to a heap-allocated result, an incomplete by-value
//! parameter becomes a pointer parameter. A *method wrapper* exposes a
//! method of a forward-declared class as a free template function taking
//! the object as its first argument; the call operator wrapper is named
//! `paren_operator` (Figure 4a).

use std::collections::{HashMap, HashSet};

use yalla_analysis::aliases::AliasResolver;
use yalla_analysis::incomplete::WrapperNeed;
use yalla_analysis::symbols::{SymbolKind, SymbolTable};
use yalla_analysis::usage::{FieldUsage, MethodUsage, UsageReport};
use yalla_cpp::ast::{FunctionDecl, FunctionName, Param, Type, TypeKind};

use crate::plan::{Diagnostic, DiagnosticKind, FnWrapper, MemberKind, MethodWrapper, Plan};

/// Suffix appended to wrapped function names (the paper's `_w`).
pub const WRAPPER_SUFFIX: &str = "_w";

/// Name of the call-operator method wrapper (Figure 4a line 20).
pub const PAREN_OPERATOR: &str = "paren_operator";

/// Prefix for field-accessor wrappers.
pub const FIELD_WRAPPER_PREFIX: &str = "yalla_get_";

/// Requalifies every named type in a function signature so it is spelled
/// correctly from global scope (the lightweight header lives outside the
/// library's namespaces).
pub fn requalify_signature(
    decl: &FunctionDecl,
    namespace: &[String],
    table: &SymbolTable,
) -> FunctionDecl {
    let mut out = decl.clone();
    if let Some(ret) = &mut out.ret {
        *ret = requalify_type(ret, namespace, table, out.template.as_ref());
    }
    for p in &mut out.params {
        p.ty = requalify_type(&p.ty, namespace, table, out.template.as_ref());
    }
    out
}

/// Requalifies one type against an enclosing namespace path. Template
/// parameters of the function itself are left untouched.
pub fn requalify_type(
    ty: &Type,
    namespace: &[String],
    table: &SymbolTable,
    template: Option<&yalla_cpp::ast::TemplateHeader>,
) -> Type {
    let tparams: HashSet<&str> = template
        .map(|t| t.params.iter().map(|p| p.name()).collect())
        .unwrap_or_default();
    requalify_rec(ty, namespace, table, &tparams)
}

fn requalify_rec(
    ty: &Type,
    namespace: &[String],
    table: &SymbolTable,
    tparams: &HashSet<&str>,
) -> Type {
    let mut out = ty.clone();
    match &mut out.kind {
        TypeKind::Named(name) => {
            // Leave template parameters alone.
            if name.segs.len() == 1 && tparams.contains(name.segs[0].ident.as_str()) {
                return out;
            }
            // Requalify template args first.
            for seg in &mut name.segs {
                if let Some(args) = &mut seg.args {
                    for a in args.iter_mut() {
                        if let yalla_cpp::ast::TemplateArg::Type(t) = a {
                            *t = requalify_rec(t, namespace, table, tparams);
                        }
                    }
                }
            }
            if table.get(&name.key()).is_some() {
                return out; // already fully qualified
            }
            let mut scopes = namespace.to_vec();
            while !scopes.is_empty() {
                let candidate = format!("{}::{}", scopes.join("::"), name.key());
                if table.get(&candidate).is_some() {
                    let mut segs: Vec<yalla_cpp::ast::NameSeg> = scopes
                        .iter()
                        .map(|s| yalla_cpp::ast::NameSeg::plain(s.clone()))
                        .collect();
                    segs.extend(name.segs.clone());
                    name.segs = segs;
                    break;
                }
                scopes.pop();
            }
            out
        }
        TypeKind::Pointer(inner)
        | TypeKind::LValueRef(inner)
        | TypeKind::RValueRef(inner)
        | TypeKind::Array(inner, _) => {
            **inner = requalify_rec(inner, namespace, table, tparams);
            out
        }
        _ => out,
    }
}

/// Indices of by-value parameters that receive an incomplete class by
/// value at some call site, even though the parameter's *written* type is
/// a bare template parameter (the paper's `parallel_for` case, §3.2.2).
pub fn call_site_incomplete_params(
    decl: &FunctionDecl,
    used: &yalla_analysis::usage::UsedFunction,
    incomplete: &HashSet<String>,
    table: &SymbolTable,
) -> Vec<usize> {
    let aliases = AliasResolver::new(table);
    let mut out = Vec::new();
    for (i, p) in decl.params.iter().enumerate() {
        if !p.ty.is_by_value() {
            continue;
        }
        let receives_incomplete = used.calls.iter().any(|c| {
            let Some(Some(arg_ty)) = c.arg_types.get(i) else {
                return false;
            };
            if !arg_ty.is_by_value() {
                return false;
            }
            let resolved = aliases.resolve_type(arg_ty);
            resolved
                .core_name()
                .and_then(|n| table.resolve(&n.key()).map(|s| s.key.clone()))
                .is_some_and(|k| incomplete.contains(&k))
        });
        if receives_incomplete {
            out.push(i);
        }
    }
    out
}

/// Builds a function wrapper for `original` (already requalified).
#[allow(clippy::too_many_arguments)]
pub fn make_fn_wrapper(
    key: &str,
    original: &FunctionDecl,
    need: &WrapperNeed,
    incomplete: &HashSet<String>,
    table: &SymbolTable,
    usage: &UsageReport,
    forced_param_ptrs: &[usize],
    diagnostics: &mut Vec<Diagnostic>,
) -> FnWrapper {
    let aliases = AliasResolver::new(table);
    let base = original.name.as_ident().unwrap_or("wrapped").to_string();
    let wrapper_name = format!("{base}{WRAPPER_SUFFIX}");

    let is_incomplete_by_value = |ty: &Type| -> bool {
        if !ty.is_by_value() {
            return false;
        }
        let resolved = aliases.resolve_type(ty);
        resolved
            .core_name()
            .and_then(|c| table.resolve(&c.key()).map(|s| s.key.clone()))
            .is_some_and(|k| incomplete.contains(&k))
    };

    let mut decl = original.clone();
    decl.name = FunctionName::Ident(wrapper_name.clone());
    decl.qualifier = None;
    decl.body = None;
    // Incomplete return by value → pointer to heap-allocated result.
    if let Some(ret) = &mut decl.ret {
        if is_incomplete_by_value(ret) {
            *ret = Type::pointer(ret.clone());
        }
    }
    // Incomplete by-value params → pointers (statically visible or forced
    // by call-site evidence).
    let mut pointerized_params = Vec::new();
    for (i, p) in decl.params.iter_mut().enumerate() {
        if is_incomplete_by_value(&p.ty) || forced_param_ptrs.contains(&i) {
            p.ty = Type::pointer(p.ty.clone());
            pointerized_params.push(i);
        }
    }

    // Deduce explicit instantiations per call site.
    let tparam_names: Vec<String> = original
        .template
        .as_ref()
        .map(|t| t.params.iter().map(|p| p.name().to_string()).collect())
        .unwrap_or_default();
    let mut pending = Vec::new();
    if let Some(used) = usage.functions.get(key) {
        for call in &used.calls {
            if tparam_names.is_empty() {
                continue; // non-template wrapper: nothing to instantiate
            }
            let mut deduced: Vec<Option<String>> = vec![None; tparam_names.len()];
            if let Some(explicit) = &call.explicit_targs {
                for (i, a) in explicit.iter().enumerate() {
                    if i < deduced.len() {
                        deduced[i] = Some(a.clone());
                    }
                }
            }
            for (pi, param) in original.params.iter().enumerate() {
                let Some(bound) = template_param_of(&param.ty, &tparam_names) else {
                    continue;
                };
                if deduced[bound].is_some() {
                    continue;
                }
                if let Some(Some(arg_ty)) = call.arg_types.get(pi) {
                    let mut t = strip_ref(arg_ty);
                    t.is_const = false;
                    let resolved = aliases.resolve_type_deep(&t);
                    deduced[bound] = Some(resolved.to_string());
                }
            }
            pending.push((call.span, deduced));
        }
    }
    if tparam_names.is_empty() && original.template.is_some() {
        diagnostics.push(Diagnostic {
            kind: DiagnosticKind::Note,
            message: format!("wrapper for `{key}` has an empty template head"),
            span: None,
        });
    }

    FnWrapper {
        original_key: key.to_string(),
        wrapper_name,
        need: need.clone(),
        decl,
        original: original.clone(),
        pointerized_params,
        instantiations: Vec::new(),
        pending_insts: pending,
    }
}

/// If `ty`'s core is exactly one of the function's template parameters,
/// return that parameter's index.
fn template_param_of(ty: &Type, tparams: &[String]) -> Option<usize> {
    let core = ty.core_name()?;
    if core.segs.len() != 1 || core.segs[0].args.is_some() {
        return None;
    }
    tparams.iter().position(|p| *p == core.segs[0].ident)
}

fn strip_ref(ty: &Type) -> Type {
    match &ty.kind {
        TypeKind::LValueRef(inner) | TypeKind::RValueRef(inner) => (**inner).clone(),
        _ => ty.clone(),
    }
}

/// Builds a method wrapper for `class_key::method`.
pub fn make_method_wrapper(
    class_key: &str,
    method: &str,
    mu: &MethodUsage,
    table: &SymbolTable,
    usage: &UsageReport,
) -> Result<MethodWrapper, Diagnostic> {
    let sym = table.get(class_key).ok_or_else(|| Diagnostic {
        kind: DiagnosticKind::UnknownSymbol,
        message: format!("class `{class_key}` not in symbol table"),
        span: None,
    })?;
    let SymbolKind::Class(class) = &sym.kind else {
        return Err(Diagnostic {
            kind: DiagnosticKind::UnknownSymbol,
            message: format!("`{class_key}` is not a class"),
            span: None,
        });
    };
    // Locate the method declaration in the class definition.
    let target_spelling = yalla_cpp::Sym::intern(method);
    let found = class.methods().find(|(_, f)| {
        f.name.spelling() == target_spelling
            || (target_spelling == "operator()" && f.name == FunctionName::CallOperator)
    });
    let Some((_, mdecl)) = found else {
        return Err(Diagnostic {
            kind: DiagnosticKind::UnknownSymbol,
            message: format!("method `{method}` not found in `{class_key}`"),
            span: None,
        });
    };
    let mut class_scope = sym.scope.clone();
    class_scope.push(class.name.clone());
    // A method of a class template may spell its types in terms of the
    // class's template parameters (`DataType& operator()(...)`). The
    // wrapper is generated for the *usage*, so concretize those
    // parameters from the first receiver's template arguments (paper
    // Fig. 4a writes `int& paren_operator(...)` for a specific View).
    let aliases0 = AliasResolver::new(table);
    let class_args: Option<Vec<yalla_cpp::ast::TemplateArg>> = mu.calls.iter().find_map(|c| {
        let recv = c.receiver.as_ref()?;
        let resolved = aliases0.resolve_type_deep(&strip_ref(recv));
        resolved.core_name()?.last().args.clone()
    });
    let class_params: Vec<String> = class
        .template
        .as_ref()
        .map(|t| t.params.iter().map(|p| p.name().to_string()).collect())
        .unwrap_or_default();
    let concretize = |ty: &Type| -> Type {
        let q = requalify_type(ty, &class_scope, table, mdecl.template.as_ref());
        match (&class_args, class_params.is_empty()) {
            (Some(args), false) => {
                let params: Vec<&str> = class_params.iter().map(|s| s.as_str()).collect();
                yalla_analysis::aliases::substitute_params(&q, &params, args)
            }
            _ => q,
        }
    };
    let ret = mdecl
        .ret
        .as_ref()
        .map(&concretize)
        .unwrap_or_else(Type::void);
    let params: Vec<Param> = mdecl
        .params
        .iter()
        .map(|p| Param {
            ty: concretize(&p.ty),
            name: p.name.clone(),
            default: None,
        })
        .collect();
    let wrapper_name = if method == "operator()" {
        PAREN_OPERATOR.to_string()
    } else {
        method.to_string()
    };
    // Receiver instantiations, with pointerized classes spelled as pointers.
    let aliases = AliasResolver::new(table);
    let mut instantiations = Vec::new();
    for call in &mu.calls {
        if let Some(recv) = &call.receiver {
            let rendered = render_receiver(recv, usage, &aliases);
            if !instantiations.contains(&rendered) {
                instantiations.push(rendered);
            }
        }
    }
    Ok(MethodWrapper {
        class_key: class_key.to_string(),
        member: method.to_string(),
        wrapper_name,
        kind: if method == "operator()" {
            MemberKind::CallOperator
        } else {
            MemberKind::Method
        },
        ret,
        params,
        is_const: mdecl.specs.is_const,
        instantiations,
    })
}

/// Builds a field-accessor wrapper for `class_key::field`.
pub fn make_field_wrapper(
    class_key: &str,
    field: &str,
    fu: &FieldUsage,
    table: &SymbolTable,
) -> Result<MethodWrapper, Diagnostic> {
    let sym = table.get(class_key).ok_or_else(|| Diagnostic {
        kind: DiagnosticKind::UnknownSymbol,
        message: format!("class `{class_key}` not in symbol table"),
        span: None,
    })?;
    let SymbolKind::Class(class) = &sym.kind else {
        return Err(Diagnostic {
            kind: DiagnosticKind::UnknownSymbol,
            message: format!("`{class_key}` is not a class"),
            span: None,
        });
    };
    let Some((_, fdecl)) = class.fields().find(|(_, f)| f.name == field) else {
        return Err(Diagnostic {
            kind: DiagnosticKind::UnknownSymbol,
            message: format!("field `{field}` not found in `{class_key}`"),
            span: None,
        });
    };
    let mut class_scope = sym.scope.clone();
    class_scope.push(class.name.clone());
    let field_ty = requalify_type(&fdecl.ty, &class_scope, table, None);
    let aliases = AliasResolver::new(table);
    let mut instantiations = Vec::new();
    for recv in &fu.receiver_types {
        let rendered = {
            let mut t = strip_ref(recv);
            t.is_const = false;
            aliases.resolve_type_deep(&t).to_string()
        };
        if !instantiations.contains(&rendered) {
            instantiations.push(rendered);
        }
    }
    Ok(MethodWrapper {
        class_key: class_key.to_string(),
        member: field.to_string(),
        wrapper_name: format!("{FIELD_WRAPPER_PREFIX}{field}"),
        kind: MemberKind::Field,
        ret: Type::lvalue_ref(field_ty),
        params: Vec::new(),
        is_const: false,
        instantiations,
    })
}

fn render_receiver(recv: &Type, _usage: &UsageReport, aliases: &AliasResolver<'_>) -> String {
    let mut t = strip_ref(recv);
    t.is_const = false;
    aliases.resolve_type_deep(&t).to_string()
}

/// Fills lambda-typed template arguments in pending wrapper
/// instantiations with the generated functor names, then finalizes all
/// instantiation lists (dropping — with a diagnostic — any that still
/// have unknown arguments).
pub fn patch_lambda_instantiations(plan: &mut Plan) {
    // Map: (target function key, lambda span) → functor name. The functor
    // list is parallel to usage.lambdas filtered by target.
    let functor_spans: Vec<(yalla_cpp::loc::Span, String)> = plan
        .functors
        .iter()
        .map(|f| (f.span, f.name.clone()))
        .collect();
    let mut diagnostics = Vec::new();
    for w in &mut plan.fn_wrappers {
        let pending = std::mem::take(&mut w.pending_insts);
        for (call_span, mut deduced) in pending {
            // A lambda whose span lies inside this call fills the first
            // still-unknown parameter (lambdas bind to the functor/functor
            // template parameter, conventionally the last).
            for (lspan, fname) in &functor_spans {
                let contained = lspan.file == call_span.file
                    && lspan.start >= call_span.start
                    && lspan.end <= call_span.end;
                if contained {
                    if let Some(slot) = deduced.iter_mut().rev().find(|d| d.is_none()) {
                        *slot = Some(fname.clone());
                    }
                }
            }
            if deduced.iter().all(|d| d.is_some()) {
                let args: Vec<String> = deduced.into_iter().map(|d| d.unwrap()).collect();
                if !w.instantiations.contains(&args) {
                    w.instantiations.push(args);
                }
            } else {
                diagnostics.push(Diagnostic {
                    kind: DiagnosticKind::DeductionFailed,
                    message: format!(
                        "could not deduce all template arguments for an explicit \
                         instantiation of `{}`; that call site keeps the wrapper \
                         as an implicit template",
                        w.wrapper_name
                    ),
                    span: Some(call_span),
                });
            }
        }
    }
    // Rename colliding method-wrapper names (same name from different
    // classes with identical parameter lists would clash).
    let mut seen: HashMap<String, usize> = HashMap::new();
    for mw in &mut plan.method_wrappers {
        let count = seen.entry(mw.wrapper_name.clone()).or_insert(0);
        *count += 1;
        if *count > 1 {
            mw.wrapper_name = format!("{}_{}", mw.wrapper_name, *count - 1);
        }
    }
    plan.diagnostics.extend(diagnostics);
}
