//! The substitution plan: everything the engine decided to generate.
//!
//! The plan is the bridge between analysis (what is used, and how) and
//! code generation (what to emit and rewrite). Building the plan is the
//! body of the paper's Figure 5 algorithm: classify every used symbol per
//! Table 1, synthesize wrapper signatures, convert lambdas to functors,
//! and record the rewrites the sources need.

use std::collections::{BTreeMap, HashSet};

use yalla_analysis::aliases::AliasResolver;
use yalla_analysis::incomplete::{wrapper_need, WrapperNeed};
use yalla_analysis::symbols::{SymbolKind, SymbolTable};
use yalla_analysis::usage::UsageReport;
use yalla_cpp::ast::{
    Block, ClassKey, EnumDecl, FunctionDecl, Param, TemplateHeader, Type, TypeKind,
};
use yalla_cpp::loc::Span;

use crate::lambda;
use crate::wrappers;

/// A problem (or note) the engine wants to surface. Diagnostics never
/// abort the substitution; the affected symbol keeps its original form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Category.
    pub kind: DiagnosticKind,
    /// Human-readable explanation.
    pub message: String,
    /// Source location, when known.
    pub span: Option<Span>,
}

/// Categories of diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagnosticKind {
    /// A used class is nested inside another class and its parent must be
    /// forward declared — the paper's documented unsupported case (§3.2.1).
    NestedClassUnsupported,
    /// Template-argument deduction for an explicit wrapper instantiation
    /// failed; the wrapper is emitted but that instantiation is skipped.
    DeductionFailed,
    /// A name could not be resolved against the symbol table.
    UnknownSymbol,
    /// Informational.
    Note,
}

/// A class to forward declare in the lightweight header.
#[derive(Debug, Clone)]
pub struct ForwardClass {
    /// Fully qualified key.
    pub key: String,
    /// Enclosing namespace path.
    pub namespace: Vec<String>,
    /// Unqualified name.
    pub name: String,
    /// `class` or `struct` (must match the original declaration).
    pub class_key: ClassKey,
    /// Template head, carried over (including defaults) when present.
    pub template: Option<TemplateHeader>,
    /// Whether by-value uses of this class get pointerized.
    pub pointerize: bool,
}

/// A function that can be forward declared directly (Table 1 row 4a).
#[derive(Debug, Clone)]
pub struct ForwardFunction {
    /// Fully qualified key.
    pub key: String,
    /// Enclosing namespace path.
    pub namespace: Vec<String>,
    /// Signature to declare (types requalified to global spelling).
    pub decl: FunctionDecl,
}

/// A function wrapper (Table 1 row 4b).
#[derive(Debug, Clone)]
pub struct FnWrapper {
    /// Key of the wrapped function.
    pub original_key: String,
    /// Wrapper name (`TeamThreadRange_w`).
    pub wrapper_name: String,
    /// Why the wrapper exists.
    pub need: WrapperNeed,
    /// The wrapper's own signature (declared at global scope in the
    /// lightweight header).
    pub decl: FunctionDecl,
    /// Original (requalified) signature, used to emit the definition.
    pub original: FunctionDecl,
    /// Indices of parameters converted from by-value incomplete types to
    /// pointers.
    pub pointerized_params: Vec<usize>,
    /// Explicit template instantiations to emit (rendered argument lists,
    /// e.g. `["Kokkos::BoundsStruct", "yalla_functor_0"]`).
    pub instantiations: Vec<Vec<String>>,
    /// Partially deduced instantiations awaiting lambda→functor patching:
    /// `(call span, per-template-param deduced spelling)`.
    pub(crate) pending_insts: Vec<(Span, Vec<Option<String>>)>,
}

/// What kind of member a method wrapper wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberKind {
    /// An ordinary method.
    Method,
    /// The overloaded call operator.
    CallOperator,
    /// A data member (wrapper returns a reference to it).
    Field,
}

/// A method/field wrapper (Table 1 row 5).
#[derive(Debug, Clone)]
pub struct MethodWrapper {
    /// Key of the owning class.
    pub class_key: String,
    /// Member name as spelled in the class.
    pub member: String,
    /// Wrapper function name (`league_rank`, `paren_operator`,
    /// `yalla_get_rank`).
    pub wrapper_name: String,
    /// Member kind.
    pub kind: MemberKind,
    /// Return type of the wrapper (for fields: reference to field type).
    pub ret: Type,
    /// Non-receiver parameters (copied from the method).
    pub params: Vec<Param>,
    /// Whether the wrapped method is const (receiver passed as const ref).
    pub is_const: bool,
    /// Receiver types to explicitly instantiate with (rendered; pointer
    /// types mean the call site passes a pointerized object).
    pub instantiations: Vec<String>,
}

/// A functor generated from a lambda (Table 1 row 6, §3.4).
#[derive(Debug, Clone)]
pub struct Functor {
    /// Generated name (`yalla_functor_0`).
    pub name: String,
    /// Captured variables as fields (types already pointerized).
    pub fields: Vec<(String, Type)>,
    /// Names of captured variables that the body *mutates*: their fields
    /// are pointers, the construction site passes `&name`, and body uses
    /// read `(*name)` — mutation through a pointer keeps the call
    /// operator `const`, matching the paper's functor shape.
    pub mutated_captures: std::collections::HashSet<String>,
    /// Call-operator parameters.
    pub params: Vec<(Type, String)>,
    /// Call-operator body (already rewritten to use wrappers).
    pub body: Block,
    /// Span of the original lambda in the source (replaced by a
    /// constructor call).
    pub span: Span,
}

/// An enum whose usages get replaced with its underlying type (Table 1
/// row 3).
#[derive(Debug, Clone)]
pub struct EnumReplacement {
    /// Fully qualified key of the enum.
    pub key: String,
    /// The declaration (kept for documentation/reporting).
    pub decl: EnumDecl,
    /// Spelling of the underlying type (defaults to `int`).
    pub underlying: String,
    /// Evaluated enumerator values.
    pub constants: BTreeMap<String, i64>,
}

/// The complete substitution plan.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    /// Classes to forward declare.
    pub classes: Vec<ForwardClass>,
    /// Functions forward declared as-is.
    pub functions: Vec<ForwardFunction>,
    /// Function wrappers.
    pub fn_wrappers: Vec<FnWrapper>,
    /// Method/field wrappers.
    pub method_wrappers: Vec<MethodWrapper>,
    /// Functors generated from lambdas.
    pub functors: Vec<Functor>,
    /// Enum replacements.
    pub enums: Vec<EnumReplacement>,
    /// Keys of classes whose by-value uses must be pointerized.
    pub pointerized_classes: HashSet<String>,
    /// Diagnostics accumulated while planning.
    pub diagnostics: Vec<Diagnostic>,
}

impl Plan {
    /// Builds the plan from a usage report (Figure 5, lines 2–25).
    pub fn build(usage: &UsageReport, table: &SymbolTable) -> Plan {
        let mut plan = Plan::default();
        let aliases = AliasResolver::new(table);

        // ---- classes (Fig. 5 lines 11–14) --------------------------------
        let mut class_keys: Vec<String> = usage.classes.keys().cloned().collect();
        // Classes referenced by used functions' signatures are also needed
        // (Fig. 5 lines 7–10).
        for f in usage.functions.values() {
            let mut mention = |ty: &Type| {
                let resolved = aliases.resolve_type(ty);
                resolved.for_each_named(&mut |n| {
                    if let Some(key) = aliases.resolve_key_to_class(&n.key()) {
                        if table.get(&key).is_some() && !class_keys.contains(&key) {
                            class_keys.push(key);
                        }
                    }
                });
            };
            if let Some(ret) = &f.decl.ret {
                mention(ret);
            }
            for p in &f.decl.params {
                mention(&p.ty);
            }
        }
        class_keys.sort();
        class_keys.dedup();

        for key in &class_keys {
            let Some(sym) = table.get(key) else {
                plan.diagnostics.push(Diagnostic {
                    kind: DiagnosticKind::UnknownSymbol,
                    message: format!("used class `{key}` not found in symbol table"),
                    span: None,
                });
                continue;
            };
            let SymbolKind::Class(class) = &sym.kind else {
                continue;
            };
            if sym.nested_in_class {
                // §3.2.1: nested classes cannot be forward declared when
                // the parent is forward declared. Try the alias route is
                // already done upstream; at this point we must refuse.
                plan.diagnostics.push(Diagnostic {
                    kind: DiagnosticKind::NestedClassUnsupported,
                    message: format!(
                        "`{key}` is a nested class and cannot be forward declared; \
                         Header Substitution does not support this case (paper §3.2.1)"
                    ),
                    span: None,
                });
                continue;
            }
            let pointerize = usage
                .classes
                .get(key)
                .map(|u| u.has_by_value())
                .unwrap_or(false);
            plan.classes.push(ForwardClass {
                key: key.clone(),
                namespace: sym.scope.clone(),
                name: class.name.clone(),
                class_key: class.key,
                template: class.template.clone(),
                pointerize,
            });
            if pointerize {
                plan.pointerized_classes.insert(key.clone());
            }
        }

        // ---- enums (Table 1 row 3) ---------------------------------------
        for (key, eu) in &usage.enums {
            let underlying = eu
                .decl
                .underlying
                .as_ref()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "int".to_string());
            let mut constants = BTreeMap::new();
            let mut next = 0i64;
            for en in &eu.decl.enumerators {
                let value = match &en.value {
                    Some(text) => match text.trim().parse::<i64>() {
                        Ok(v) => v,
                        Err(_) => {
                            plan.diagnostics.push(Diagnostic {
                                kind: DiagnosticKind::Note,
                                message: format!(
                                    "enumerator `{key}::{}` has a non-literal value `{text}`; \
                                     using sequential numbering",
                                    en.name
                                ),
                                span: None,
                            });
                            next
                        }
                    },
                    None => next,
                };
                constants.insert(en.name.clone(), value);
                next = value + 1;
            }
            plan.enums.push(EnumReplacement {
                key: key.clone(),
                decl: eu.decl.clone(),
                underlying,
                constants,
            });
        }

        // ---- functions (Fig. 5 lines 16–22) ------------------------------
        let incomplete: HashSet<String> = plan.classes.iter().map(|c| c.key.clone()).collect();
        for (key, used) in &usage.functions {
            let sym = table.get(key);
            let namespace = sym.map(|s| s.scope.clone()).unwrap_or_default();
            let requalified = wrappers::requalify_signature(&used.decl, &namespace, table);
            // Call-site refinement: a by-value parameter whose written type
            // is a bare template parameter still needs pointerizing when
            // some call site passes an incomplete class by value through it
            // (the paper's `parallel_for(TeamThreadRange(...), ...)` case).
            let forced =
                wrappers::call_site_incomplete_params(&requalified, used, &incomplete, table);
            let need = match wrapper_need(&requalified, &incomplete, table) {
                WrapperNeed::ForwardDeclarable if forced.is_empty() => {
                    plan.functions.push(ForwardFunction {
                        key: key.clone(),
                        namespace,
                        decl: requalified,
                    });
                    continue;
                }
                WrapperNeed::ForwardDeclarable => WrapperNeed::ParamIncompleteByValue {
                    class: String::new(),
                    param_index: forced[0],
                },
                need => need,
            };
            let wrapper = wrappers::make_fn_wrapper(
                key,
                &requalified,
                &need,
                &incomplete,
                table,
                usage,
                &forced,
                &mut plan.diagnostics,
            );
            plan.fn_wrappers.push(wrapper);
        }

        // ---- methods & fields (Table 1 row 5) -----------------------------
        for ((class_key, method), mu) in &usage.methods {
            match wrappers::make_method_wrapper(class_key, method, mu, table, usage) {
                Ok(w) => plan.method_wrappers.push(w),
                Err(d) => plan.diagnostics.push(d),
            }
        }
        for ((class_key, field), fu) in &usage.fields {
            match wrappers::make_field_wrapper(class_key, field, fu, table) {
                Ok(w) => plan.method_wrappers.push(w),
                Err(d) => plan.diagnostics.push(d),
            }
        }

        // ---- lambdas (Fig. 5 lines 23–25) ---------------------------------
        let mut functors = Vec::new();
        for lu in &usage.lambdas {
            // Only lambdas flowing into substituted functions need the
            // functor treatment.
            if lu.target_function.is_none() {
                continue;
            }
            let functor = lambda::make_functor(functors.len(), lu, &plan, table, usage);
            functors.push(functor);
        }
        plan.functors = functors;

        // Patch function-wrapper instantiations that involve lambdas: the
        // deduced type of a lambda argument is its functor's name.
        wrappers::patch_lambda_instantiations(&mut plan);

        plan
    }

    /// Total number of generated artifacts (for reporting).
    pub fn artifact_count(&self) -> usize {
        self.classes.len()
            + self.functions.len()
            + self.fn_wrappers.len()
            + self.method_wrappers.len()
            + self.functors.len()
            + self.enums.len()
    }
}

/// Helper: true when a type (after stripping indirection) names one of the
/// pointerized classes.
pub(crate) fn mentions_pointerized(
    ty: &Type,
    pointerized: &HashSet<String>,
    table: &SymbolTable,
) -> bool {
    let aliases = AliasResolver::new(table);
    let resolved = aliases.resolve_type(ty);
    match resolved.core_name() {
        Some(core) => {
            let key = aliases
                .resolve_key_to_class(&core.key())
                .unwrap_or_else(|| core.key());
            pointerized.contains(&key)
        }
        None => false,
    }
}

/// Helper: pointerize a type if its core names a pointerized class and the
/// use is by value.
pub(crate) fn pointerize_if_needed(
    ty: &Type,
    pointerized: &HashSet<String>,
    table: &SymbolTable,
) -> Type {
    if !ty.is_by_value() {
        return ty.clone();
    }
    if matches!(ty.kind, TypeKind::Builtin(_)) {
        return ty.clone();
    }
    if mentions_pointerized(ty, pointerized, table) {
        Type::pointer(ty.clone())
    } else {
        ty.clone()
    }
}
