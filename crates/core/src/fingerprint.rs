//! Content fingerprints for the plan/emit stages of the incremental
//! pipeline.
//!
//! The paper's §6 observation is that the tool only *needs* to re-run
//! when the set of symbols the sources use from the expensive header
//! grows — pure body edits leave the lightweight header and wrappers file
//! untouched. The session layer reproduces that by keying the plan and
//! emit stages on a **usage fingerprint**: a hash over everything the
//! plan actually depends on, and nothing it does not.
//!
//! What goes in:
//!
//! * the substituted header and the artifact file names,
//! * every used class key plus the header-side shape of its declaration
//!   (template head, members) — header edits must invalidate,
//! * every used function key plus its header-side declaration,
//! * used method/field keys,
//! * used enums with their declarations (constant values are inlined into
//!   the rewritten sources),
//! * lambdas passed to wrapped calls, *including their spans* — the plan
//!   stores functor spans that the rewriter matches against, so a lambda
//!   that moved must rebuild the plan.
//!
//! What stays out — deliberately: call-site spans and receiver-type
//! details of already-used symbols. Adding another call to an
//! already-wrapped function, or any edit downstream of the last lambda,
//! changes neither the lightweight header nor the wrappers file, and the
//! fingerprint is unchanged — the plan and emit stages are skipped,
//! reproducing the paper's "no re-run needed" steady state. Pre-declared
//! symbols ([`crate::Options::extra_symbols`]) are merged into the usage
//! report *before* fingerprinting, so growing into a pre-declared symbol
//! also keeps the fingerprint stable (§6).

use yalla_analysis::symbols::SymbolTable;
use yalla_analysis::usage::UsageReport;
use yalla_cpp::hash::Fnv64;

use crate::engine::Options;

/// Fingerprint of every plan-relevant input: the used-symbol set, the
/// header-side declarations behind it, and the lambda set with spans.
pub fn usage_fingerprint(usage: &UsageReport, table: &SymbolTable, options: &Options) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&options.header);
    h.write_str(&options.lightweight_name);
    h.write_str(&options.wrappers_name);

    // Classes referenced anywhere (directly, via methods, via fields),
    // with their header-side declaration shape. BTreeMap keys iterate
    // sorted, so the fingerprint is deterministic.
    let mut class_keys: Vec<&str> = usage.classes.keys().map(String::as_str).collect();
    for (class, _) in usage.methods.keys() {
        class_keys.push(class);
    }
    for (class, _) in usage.fields.keys() {
        class_keys.push(class);
    }
    class_keys.sort_unstable();
    class_keys.dedup();
    for key in class_keys {
        h.write_str("class");
        h.write_str(key);
        if let Some(sym) = table.resolve(key) {
            h.write_u64(u64::from(sym.nested_in_class));
            h.write_str(&format!("{:?}", sym.kind));
        }
    }

    for (key, f) in &usage.functions {
        h.write_str("fn");
        h.write_str(key);
        // The declaration lives in the header: its debug form (including
        // spans) only changes when the header itself changes, which must
        // invalidate the plan anyway.
        h.write_str(&format!("{:?}", f.decl));
    }
    for (class, method) in usage.methods.keys() {
        h.write_str("method");
        h.write_str(class);
        h.write_str(method);
    }
    for (class, field) in usage.fields.keys() {
        h.write_str("field");
        h.write_str(class);
        h.write_str(field);
    }
    for (key, e) in &usage.enums {
        h.write_str("enum");
        h.write_str(key);
        h.write_str(&format!("{:?}", e.decl));
    }
    for lambda in &usage.lambdas {
        h.write_str("lambda");
        // Span-sensitive by design: plan functors carry the lambda span
        // the rewriter splices at.
        h.write_str(&format!("{lambda:?}"));
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use yalla_cpp::vfs::Vfs;
    use yalla_cpp::Frontend;

    fn analyzed(source: &str) -> (UsageReport, SymbolTable) {
        let mut vfs = Vfs::new();
        vfs.add_file(
            "lib.hpp",
            "#pragma once\nnamespace L {\nclass Used { public: int id() const; };\nclass Other { public: int go(); };\n}\n",
        );
        vfs.add_file("main.cpp", source);
        let fe = Frontend::new(vfs.clone());
        let tu = fe.parse_translation_unit("main.cpp").unwrap();
        let table = SymbolTable::build(&tu.ast);
        let header = vfs.lookup("lib.hpp").unwrap();
        let main = vfs.lookup("main.cpp").unwrap();
        let usage = UsageReport::collect(
            &tu.ast,
            &table,
            &std::iter::once(header).collect(),
            &std::iter::once(main).collect(),
        );
        (usage, table)
    }

    fn fp(source: &str) -> u64 {
        let (usage, table) = analyzed(source);
        usage_fingerprint(
            &usage,
            &table,
            &Options {
                header: "lib.hpp".into(),
                sources: vec!["main.cpp".into()],
                ..Options::default()
            },
        )
    }

    #[test]
    fn body_edits_keep_the_fingerprint() {
        let a = fp("#include \"lib.hpp\"\nint f(L::Used& u) { return u.id(); }\n");
        let b = fp("#include \"lib.hpp\"\nint f(L::Used& u) { return u.id() + 41; }\n");
        // Another call to an already-used method is also invisible.
        let c = fp("#include \"lib.hpp\"\nint f(L::Used& u) { return u.id() + u.id(); }\n");
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn growing_the_used_set_changes_the_fingerprint() {
        let a = fp("#include \"lib.hpp\"\nint f(L::Used& u) { return u.id(); }\n");
        let b = fp(
            "#include \"lib.hpp\"\nint f(L::Used& u, L::Other& o) { return u.id() + o.go(); }\n",
        );
        assert_ne!(a, b);
    }

    #[test]
    fn options_participate() {
        let (usage, table) =
            analyzed("#include \"lib.hpp\"\nint f(L::Used& u) { return u.id(); }\n");
        let base = Options {
            header: "lib.hpp".into(),
            sources: vec!["main.cpp".into()],
            ..Options::default()
        };
        let renamed = Options {
            lightweight_name: "other_lw.hpp".into(),
            ..base.clone()
        };
        assert_ne!(
            usage_fingerprint(&usage, &table, &base),
            usage_fingerprint(&usage, &table, &renamed)
        );
    }
}
