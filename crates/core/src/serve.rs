//! The `yalla serve` daemon: a long-lived pool of warm [`Session`]s
//! behind a line-delimited JSON protocol.
//!
//! The paper's workflow keeps the substitution tool resident so the
//! developer loop (edit → rerun → read artifacts) never pays process
//! startup or cold caches. This module implements that as a daemon:
//!
//! * **Shards.** Each project gets a [`ProjectShard`] holding one warm
//!   [`Session`]. Shards are keyed by the *root hash* — a content hash of
//!   the opened file tree plus the substitution options — so re-opening
//!   an identical project (even under another name) lands on the same
//!   warm shard instead of rebuilding caches. Shard state is split by
//!   concern — an edit queue, a published-artifacts slot, and the
//!   session itself — each behind its own lock, so `edit`, `get`,
//!   `status`, and `metrics` never wait behind a pipeline pass; only
//!   concurrent `rerun`s on the *same* project serialize.
//! * **Batching + coalescing.** `edit` requests are queued on the shard
//!   and applied in arrival order by the next `rerun` — N edits between
//!   reruns cost one pipeline pass, exactly like saving N files before
//!   rebuilding. An edit that lands while a rerun is *already running*
//!   goes further: it cancels the in-flight attempt (cooperatively, at
//!   the next stage boundary — see [`yalla_exec::CancelToken`]), and the
//!   rerun retries with the new edit folded in. The response reports how
//!   many attempts were superseded and how many edits it absorbed. After
//!   `MAX_SUPERSEDES` cancelled rounds the final attempt runs
//!   un-cancellable, so a continuous edit stream degrades to plain
//!   batching instead of livelocking the client.
//! * **Priority.** Client-blocking work runs at interactive priority;
//!   warm-up prefetches after a daemon restart run at background
//!   priority ([`yalla_exec::Priority`]) and are cancelled the moment a
//!   real rerun arrives — idle workers pre-warm caches, busy workers
//!   never queue client work behind a prefetch.
//! * **Execution.** A rerun runs on its handler thread, admitted by a
//!   counting semaphore sized to the [`yalla_exec::Executor`]'s worker
//!   count — one worker makes the daemon a strictly serial build agent,
//!   N workers overlap up to N project builds. Only the session's short
//!   stage-DAG tasks enter the pool itself, so a worker can never get
//!   stuck executing another project's entire build mid-wait. An
//!   optional per-shard *build latency* is slept under the semaphore,
//!   modeling the client-blocking compile the paper's Figure 6
//!   attributes to each iteration; the throughput bench uses it to
//!   measure scheduling overlap.
//! * **Wire protocol.** One JSON object per line, over a Unix socket
//!   (`ok`/`error` responses, one per request, in order). See
//!   [`ServeState::handle_line`] for the operation set.
//! * **Telemetry.** Every request gets a monotonically increasing id,
//!   stamped as `"req"` on its response line and installed as the
//!   ambient [`yalla_obs::reqid`] for the handler's whole extent — so
//!   stage, store, and event-log records produced anywhere downstream
//!   (including DAG worker threads) join back to the request. Requests
//!   are wrapped in a `serve` span, counted per class under
//!   `serve.requests.<op>`, and timed into the `latency.serve.<op>`
//!   histograms; the `metrics` op exposes all of it in Prometheus text
//!   format, snapshotted without pausing any worker.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use yalla_cpp::hash::{self, Fnv64};
use yalla_cpp::vfs::Vfs;
use yalla_exec::{CancelToken, Executor, Priority};
use yalla_obs::chrome::escape_json;
use yalla_obs::json::JsonValue;
use yalla_obs::metrics::names;
use yalla_store::{Store, NS_SERVE};

use crate::engine::{Options, SubstitutionResult, YallaError};
use crate::persist::ProjectRecord;
use crate::session::Session;

/// Supersede bound: after this many cancelled attempts, one rerun request
/// runs its final attempt un-cancellable so a continuous edit stream can
/// never livelock a client (later edits fall back to plain batching).
const MAX_SUPERSEDES: u64 = 4;

/// The edit side of a shard: queued edits plus supersede bookkeeping.
/// `edit` requests only ever touch this lock — never the session — so
/// queuing an edit during a multi-second build returns in microseconds.
#[derive(Debug, Default)]
struct EditQueue {
    /// Edits queued since the last rerun attempt started, arrival order.
    pending: Vec<(String, String)>,
    /// Bumped once per accepted edit. A rerun attempt captures the
    /// generation its input covers; any later edit supersedes it.
    generation: u64,
    /// The in-flight rerun attempt, if cancellable: its token and the
    /// edit generation it covers. An edit that lands with a higher
    /// generation cancels the token, folding itself into the retry.
    active: Option<(CancelToken, u64)>,
}

/// The read side of a shard: the last published run. `get`/`status`
/// requests only ever touch this lock, so reads never wait on a build.
#[derive(Debug, Default)]
struct Published {
    /// Client reruns completed on this shard.
    reruns: u64,
    /// Rerun attempts cancelled mid-flight by a superseding edit.
    cancelled: u64,
    /// The edit generation the published artifacts cover (monotonic).
    generation: u64,
    /// The most recent successful run's artifacts.
    last: Option<SubstitutionResult>,
    /// The most recent run's one-line stage summary.
    last_summary: String,
}

/// A warm project shard with per-concern locks: `edits` (queue +
/// supersede state), `published` (last artifacts), and `session` (the
/// pipeline itself, held only by the one running rerun). `edit`, `get`,
/// `status`, and `metrics` never take the session lock, so no request
/// class ever waits behind a pipeline pass.
#[derive(Debug)]
pub struct ProjectShard {
    /// Client-facing project name (first name that opened this tree).
    name: String,
    /// Content hash of the opened file tree + options (the shard key).
    root_hash: u64,
    /// Modeled client-blocking build time slept inside each rerun task.
    build_latency: Duration,
    /// The project's file set, fixed at open: edits may only change the
    /// contents of existing files, so `edit` validates lock-free.
    files: HashSet<String>,
    edits: Mutex<EditQueue>,
    published: Mutex<Published>,
    session: Mutex<Session>,
    /// Cancel token for this shard's background warm-up prefetch; the
    /// first client rerun cancels it and takes over.
    warmup: Mutex<Option<CancelToken>>,
}

/// A counting semaphore bounding how many builds run at once. Sized to
/// the executor's worker count: one worker makes the daemon a strictly
/// serial build agent, N workers overlap up to N project builds.
#[derive(Debug)]
struct BuildGate {
    slots: Mutex<usize>,
    freed: Condvar,
}

impl BuildGate {
    fn new(slots: usize) -> Self {
        BuildGate {
            slots: Mutex::new(slots.max(1)),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut slots = self.slots.lock().expect("gate lock");
        while *slots == 0 {
            slots = self.freed.wait(slots).expect("gate lock");
        }
        *slots -= 1;
    }

    fn release(&self) {
        *self.slots.lock().expect("gate lock") += 1;
        self.freed.notify_one();
    }
}

/// A response line plus the shutdown signal.
#[derive(Debug)]
pub struct Response {
    /// The JSON response line (no trailing newline).
    pub text: String,
    /// True when this request asked the daemon to stop.
    pub shutdown: bool,
}

impl Response {
    fn ok(body: String) -> Self {
        Response {
            text: body,
            shutdown: false,
        }
    }

    fn error(message: impl AsRef<str>) -> Self {
        yalla_obs::count(names::SERVE_REJECTED, 1);
        Response {
            text: format!(
                "{{\"ok\": false, \"error\": \"{}\"}}",
                escape_json(message.as_ref())
            ),
            shutdown: false,
        }
    }
}

/// The daemon's shared state: the shard pool and the executor that runs
/// every rerun. Transport-independent — the Unix-socket [`Server`] and
/// in-process tests both drive it through [`ServeState::handle_line`].
#[derive(Debug)]
pub struct ServeState {
    exec: Arc<Executor>,
    /// Bounds concurrent builds to the worker count.
    gate: BuildGate,
    /// root hash → shard. The warm pool.
    shards: Mutex<HashMap<u64, Arc<ProjectShard>>>,
    /// project name → root hash (names are aliases into the pool).
    names: Mutex<HashMap<String, u64>>,
    /// On-disk store shared with every shard session. Project records
    /// persisted here let a restarted daemon rebuild its warm pool.
    store: Option<Arc<Store>>,
    requests: AtomicU64,
    /// Fault-injection hook: when nonzero, the first attempt of every
    /// rerun arms its cancel token to trip at the N-th checkpoint, as if
    /// a superseding edit had landed exactly at that stage boundary.
    cancel_every: AtomicU64,
    /// When this daemon state was created (drives `status`'s uptime).
    start: Instant,
}

/// Sleeps `dur` in small slices, returning early (true) the moment
/// `cancel` trips — the modeled client-blocking compile is a cancel
/// point too, so a superseded rerun stops burning its build-gate slot.
fn sleep_cancellable(dur: Duration, cancel: &CancelToken) -> bool {
    let deadline = Instant::now() + dur;
    loop {
        if cancel.is_cancelled() {
            return true;
        }
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1).min(deadline - now));
    }
}

fn hash_request_tree(
    header: &str,
    sources: &[String],
    files: &std::collections::BTreeMap<String, JsonValue>,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(header);
    for s in sources {
        h.write_str(s);
    }
    for (path, text) in files {
        h.write_str(path);
        h.write_u64(hash::hash_str(text.as_str().unwrap_or_default()));
    }
    h.finish()
}

fn str_field<'a>(req: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    req.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

impl ServeState {
    /// A daemon state whose reruns execute on `exec`, persisting to the
    /// process-global store (if `YALLA_CACHE_DIR` is set).
    pub fn new(exec: Executor) -> Self {
        ServeState::with_store(exec, Store::global())
    }

    /// A daemon state backed by an explicit on-disk store. Project
    /// records found in the store rebuild the warm shard pool, so a
    /// daemon restarted on the same cache dir — even after a crash —
    /// serves its first rerun per project disk-warm.
    pub fn with_store(exec: Executor, store: Option<Arc<Store>>) -> Self {
        let gate = BuildGate::new(exec.workers());
        let state = ServeState {
            exec: Arc::new(exec),
            gate,
            shards: Mutex::new(HashMap::new()),
            names: Mutex::new(HashMap::new()),
            store,
            requests: AtomicU64::new(0),
            cancel_every: AtomicU64::new(0),
            start: Instant::now(),
        };
        state.rebuild_pool();
        state
    }

    /// Arms cancel-injection: when `n > 0`, the first attempt of every
    /// rerun trips its own cancel token at the `n`-th checkpoint — the
    /// same code path a superseding edit takes, but landing at a
    /// deterministic stage boundary regardless of thread timing. The
    /// rerun then retries and completes normally (`0` disarms). Test and
    /// fuzz hook.
    pub fn set_cancel_every(&self, n: u64) {
        self.cancel_every.store(n, Ordering::Relaxed);
    }

    /// Rebuilds the shard pool from project records persisted in the
    /// store. Undecodable records (torn writes, format bumps) are
    /// skipped — the project is simply cold until reopened. Each rebuilt
    /// shard gets a background-priority warm-up prefetch: idle workers
    /// pre-run its pipeline disk-warm so the first client rerun is
    /// memory-warm, but the first real rerun (or edit) on the shard
    /// cancels the prefetch and takes over.
    fn rebuild_pool(&self) {
        let Some(store) = &self.store else { return };
        let mut rebuilt: Vec<Arc<ProjectShard>> = Vec::new();
        {
            let mut shards = self.shards.lock().expect("shards lock");
            let mut name_map = self.names.lock().expect("names lock");
            for key in store.keys(NS_SERVE) {
                let Some(record) = store
                    .get_view(NS_SERVE, key)
                    .and_then(|view| ProjectRecord::decode(&view))
                else {
                    continue;
                };
                let mut vfs = Vfs::new();
                let mut files = HashSet::new();
                for (path, text) in &record.files {
                    vfs.add_file(path, text.clone());
                    files.insert(path.clone());
                }
                let options = Options {
                    header: record.header,
                    sources: record.sources,
                    ..Options::default()
                };
                name_map.insert(record.name.clone(), key);
                let shard = Arc::clone(shards.entry(key).or_insert_with(|| {
                    Arc::new(ProjectShard {
                        name: record.name,
                        root_hash: key,
                        build_latency: record.build_latency,
                        files,
                        edits: Mutex::new(EditQueue::default()),
                        published: Mutex::new(Published::default()),
                        session: Mutex::new(Session::with_store(
                            options,
                            vfs,
                            Some(Arc::clone(store)),
                        )),
                        warmup: Mutex::new(Some(CancelToken::new())),
                    })
                }));
                rebuilt.push(shard);
            }
            if !shards.is_empty() {
                yalla_obs::gauge(names::SERVE_SHARDS, shards.len() as i64);
            }
        }
        // Queue the prefetches outside the pool locks. The task holds the
        // executor weakly: a queued prefetch must not keep the executor
        // (and so the daemon) alive, and one draining at shutdown simply
        // no-ops.
        for shard in rebuilt {
            let Some(token) = shard.warmup.lock().expect("warmup lock").clone() else {
                continue;
            };
            let exec = Arc::downgrade(&self.exec);
            self.exec.spawn_background(move || {
                let Some(exec) = exec.upgrade() else { return };
                if token.is_cancelled() {
                    return;
                }
                // A client rerun owns the session lock if it got here
                // first — the prefetch is then pointless, not worth
                // waiting for.
                let Ok(mut session) = shard.session.try_lock() else {
                    return;
                };
                let run = session.rerun_with(&exec, &token, Priority::Background);
                drop(session);
                if let Ok(run) = run {
                    yalla_obs::count(names::SERVE_PREFETCHES, 1);
                    let summary = run.summary_line();
                    let mut pubd = shard.published.lock().expect("published lock");
                    if pubd.last.is_none() {
                        pubd.last_summary = summary;
                        pubd.last = Some(run.result);
                    }
                }
            });
        }
    }

    /// Persists a shard's project record (name, options, current file
    /// tree) so a restarted daemon can rebuild this shard. Best-effort:
    /// a full or read-only store just means a cold restart.
    fn persist_project(&self, shard: &ProjectShard, session: &Session) {
        let Some(store) = &self.store else { return };
        let opts = session.options();
        let record = ProjectRecord {
            name: shard.name.clone(),
            header: opts.header.clone(),
            sources: opts.sources.clone(),
            build_latency: shard.build_latency,
            files: session
                .vfs()
                .iter()
                .map(|(_, f)| (f.path.clone(), f.text.clone()))
                .collect(),
        };
        store.put(NS_SERVE, shard.root_hash, &record.encode());
    }

    /// The executor reruns are scheduled on.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Total requests handled so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    fn shard(&self, project: &str) -> Result<Arc<ProjectShard>, String> {
        let root = *self
            .names
            .lock()
            .expect("names lock")
            .get(project)
            .ok_or_else(|| format!("unknown project `{project}` (open it first)"))?;
        Ok(Arc::clone(
            self.shards
                .lock()
                .expect("shards lock")
                .get(&root)
                .expect("named shard exists"),
        ))
    }

    /// Handles one request line and produces one response line.
    ///
    /// Operations (`op` field):
    ///
    /// | op         | fields                                   | effect |
    /// |------------|------------------------------------------|--------|
    /// | `open`     | `project`, `header`, `sources`, `files`, optional `build_latency_us` | create or re-attach a warm shard |
    /// | `edit`     | `project`, `path`, `text`                | queue an edit (batched) |
    /// | `rerun`    | `project`                                | apply queued edits, run the pipeline once |
    /// | `get`      | `project`, `artifact` (`lightweight`, `wrappers`, `report`, `source:<path>`) | read an artifact |
    /// | `status`   | —                                        | shard inventory, uptime, per-class request totals, store hit-ratio |
    /// | `metrics`  | —                                        | Prometheus-text counters/gauges/latency quantiles |
    /// | `shutdown` | —                                        | stop the daemon |
    ///
    /// Every response carries a `"req"` field: the request's id, also
    /// installed as the ambient [`yalla_obs::reqid`] while the handler
    /// runs so downstream telemetry joins back to this request.
    pub fn handle_line(&self, line: &str) -> Response {
        let req_id = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let _ambient = yalla_obs::reqid::set(req_id);
        yalla_obs::count(names::SERVE_REQUESTS, 1);
        let started = Instant::now();
        let (class, mut response) = self.dispatch(line);
        let dur = started.elapsed();
        if let Some(op) = class {
            yalla_obs::count(&names::serve_requests(op), 1);
            yalla_obs::observe(&names::latency_serve(op), dur);
        }
        if yalla_obs::log::is_active() {
            let ok = !response.text.starts_with("{\"ok\": false");
            yalla_obs::log::emit(
                "request",
                &[
                    ("op", class.unwrap_or("invalid").into()),
                    ("ok", yalla_obs::ArgValue::Int(i64::from(ok))),
                    ("dur_us", yalla_obs::ArgValue::Int(dur.as_micros() as i64)),
                ],
            );
        }
        // Stamp the request id as the first field of the response object
        // (every response is a JSON object, so this is a pure prefix
        // rewrite).
        if let Some(rest) = response.text.strip_prefix('{') {
            response.text = format!("{{\"req\": {req_id}, {rest}");
        }
        response
    }

    /// Parses and routes one request; returns the request class (the
    /// `op`, when recognized) alongside the response.
    fn dispatch(&self, line: &str) -> (Option<&'static str>, Response) {
        let req = match yalla_obs::json::parse(line) {
            Ok(v) => v,
            Err(e) => return (None, Response::error(format!("bad request JSON: {e}"))),
        };
        let op = match str_field(&req, "op") {
            Ok(op) => op.to_string(),
            Err(e) => return (None, Response::error(e)),
        };
        let _span = yalla_obs::span("serve", &op);
        match op.as_str() {
            "open" => (Some("open"), self.handle_open(&req)),
            "edit" => (Some("edit"), self.handle_edit(&req)),
            "rerun" => (Some("rerun"), self.handle_rerun(&req)),
            "get" => (Some("get"), self.handle_get(&req)),
            "status" => (Some("status"), self.handle_status()),
            "metrics" => (Some("metrics"), self.handle_metrics()),
            "shutdown" => (
                Some("shutdown"),
                Response {
                    text: "{\"ok\": true, \"op\": \"shutdown\"}".to_string(),
                    shutdown: true,
                },
            ),
            other => (None, Response::error(format!("unknown op `{other}`"))),
        }
    }

    fn handle_open(&self, req: &JsonValue) -> Response {
        let project = match str_field(req, "project") {
            Ok(p) => p.to_string(),
            Err(e) => return Response::error(e),
        };
        let header = match str_field(req, "header") {
            Ok(h) => h.to_string(),
            Err(e) => return Response::error(e),
        };
        let sources: Vec<String> = match req.get("sources").and_then(JsonValue::as_array) {
            Some(items) => items
                .iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect(),
            None => return Response::error("missing array field `sources`"),
        };
        let files = match req.get("files").and_then(JsonValue::entries) {
            Some(map) => map,
            None => return Response::error("missing object field `files`"),
        };
        let build_latency = Duration::from_micros(
            req.get("build_latency_us")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0)
                .max(0.0) as u64,
        );

        let root_hash = hash_request_tree(&header, &sources, files);
        let mut shards = self.shards.lock().expect("shards lock");
        let created = !shards.contains_key(&root_hash);
        let mut new_shard = None;
        if created {
            let mut vfs = Vfs::new();
            let mut file_set = HashSet::new();
            for (path, text) in files {
                vfs.add_file(path, text.as_str().unwrap_or_default());
                file_set.insert(path.clone());
            }
            let options = Options {
                header,
                sources,
                ..Options::default()
            };
            let shard = Arc::new(ProjectShard {
                name: project.clone(),
                root_hash,
                build_latency,
                files: file_set,
                edits: Mutex::new(EditQueue::default()),
                published: Mutex::new(Published::default()),
                session: Mutex::new(Session::with_store(options, vfs, self.store.clone())),
                warmup: Mutex::new(None),
            });
            shards.insert(root_hash, Arc::clone(&shard));
            new_shard = Some(shard);
            yalla_obs::gauge(names::SERVE_SHARDS, shards.len() as i64);
        }
        drop(shards);
        if let Some(shard) = new_shard {
            if let Some(store) = &self.store {
                if !store.contains(NS_SERVE, root_hash) {
                    let session = shard.session.lock().expect("session lock");
                    self.persist_project(&shard, &session);
                }
            }
        }
        self.names
            .lock()
            .expect("names lock")
            .insert(project.clone(), root_hash);
        Response::ok(format!(
            "{{\"ok\": true, \"op\": \"open\", \"project\": \"{}\", \"shard\": \"{root_hash:016x}\", \"created\": {created}}}",
            escape_json(&project)
        ))
    }

    fn handle_edit(&self, req: &JsonValue) -> Response {
        let project = match str_field(req, "project") {
            Ok(p) => p,
            Err(e) => return Response::error(e),
        };
        let path = match str_field(req, "path") {
            Ok(p) => p.to_string(),
            Err(e) => return Response::error(e),
        };
        let text = match str_field(req, "text") {
            Ok(t) => t.to_string(),
            Err(e) => return Response::error(e),
        };
        let shard = match self.shard(project) {
            Ok(s) => s,
            Err(e) => return Response::error(e),
        };
        // The file set is fixed at open, so validation never needs the
        // session. The only lock this handler takes is the edit queue's —
        // a few pushes and compares — so edits return in microseconds
        // even while a multi-second rerun holds the session.
        if !shard.files.contains(&path) {
            return Response::error(format!("unknown file `{path}` in project `{project}`"));
        }
        let mut edits = shard.edits.lock().expect("edits lock");
        edits.pending.push((path, text));
        edits.generation += 1;
        let pending = edits.pending.len();
        // Supersede: an in-flight rerun covering an older generation is
        // now building stale input. Cancel it — it stops at its next
        // stage boundary and retries with this edit folded in.
        let mut superseded = false;
        if let Some((token, covers)) = &edits.active {
            if *covers < edits.generation && !token.is_cancelled() {
                token.cancel();
                superseded = true;
            }
        }
        drop(edits);
        yalla_obs::count(names::SERVE_EDITS_BATCHED, 1);
        Response::ok(format!(
            "{{\"ok\": true, \"op\": \"edit\", \"pending\": {pending}, \"superseded\": {superseded}}}"
        ))
    }

    fn handle_rerun(&self, req: &JsonValue) -> Response {
        let project = match str_field(req, "project") {
            Ok(p) => p,
            Err(e) => return Response::error(e),
        };
        let shard = match self.shard(project) {
            Ok(s) => s,
            Err(e) => return Response::error(e),
        };
        // A client rerun owns the shard: cancel any background warm-up
        // prefetch so it yields the session at its next stage boundary.
        if let Some(token) = shard.warmup.lock().expect("warmup lock").take() {
            token.cancel();
        }
        // The session lock (held through the whole retry loop) serializes
        // concurrent reruns on one project; the build gate bounds
        // cross-project build concurrency to the worker count. `edit`,
        // `get`, `status`, and `metrics` use their own locks and never
        // wait here. The modeled build latency and the pipeline run stay
        // on this handler thread — only the session's short stage tasks
        // ever enter the pool, so a worker mid-wait can never pick up
        // another project's multi-second build and stall its own.
        let mut session = shard.session.lock().expect("session lock");
        let mut edits_applied = 0usize;
        let mut superseded_rounds = 0u64;
        let clear_active = || {
            shard.edits.lock().expect("edits lock").active = None;
        };
        loop {
            let attempt = superseded_rounds + 1;
            // Take the queue and register this attempt as cancellable.
            // The final attempt (after MAX_SUPERSEDES cancelled rounds)
            // is not registered: later edits can no longer supersede it,
            // they just batch for the next rerun — a continuous edit
            // stream cannot livelock the client.
            let (batch, target_gen, token) = {
                let mut edits = shard.edits.lock().expect("edits lock");
                let batch = std::mem::take(&mut edits.pending);
                let token = CancelToken::new();
                if attempt == 1 {
                    let inject = self.cancel_every.load(Ordering::Relaxed);
                    if inject > 0 {
                        token.trip_after(inject);
                    }
                }
                edits.active = if attempt <= MAX_SUPERSEDES {
                    Some((token.clone(), edits.generation))
                } else {
                    None
                };
                (batch, edits.generation, token)
            };
            if attempt > 1 && !batch.is_empty() {
                // Edits absorbed by a cancelled round — coalescing saved
                // a whole pipeline pass per edit beyond plain batching.
                yalla_obs::count(names::SERVE_EDITS_COALESCED, batch.len() as i64);
            }
            edits_applied += batch.len();
            for (path, text) in batch {
                if let Err(e) = session.apply_edit(&path, text) {
                    clear_active();
                    return Response::error(e.to_string());
                }
            }
            let attempt_started = Instant::now();
            self.gate.acquire();
            // The modeled client-blocking compile (Figure 6), slept under
            // the gate so a one-slot daemon genuinely serializes builds —
            // but sliced, so a superseding edit aborts the sleep too.
            let cancelled_in_sleep =
                !shard.build_latency.is_zero() && sleep_cancellable(shard.build_latency, &token);
            let run = if cancelled_in_sleep {
                Err(YallaError::Cancelled)
            } else {
                session.rerun_with(&self.exec, &token, Priority::Interactive)
            };
            self.gate.release();
            match run {
                Ok(run) => {
                    clear_active();
                    yalla_obs::count(names::SERVE_RERUNS, 1);
                    let summary = run.summary_line();
                    let fully_cached = run.fully_cached();
                    let reruns = {
                        let mut pubd = shard.published.lock().expect("published lock");
                        pubd.reruns += 1;
                        pubd.generation = pubd.generation.max(target_gen);
                        pubd.last_summary = summary.clone();
                        pubd.last = Some(run.result);
                        pubd.reruns
                    };
                    // Keep the on-disk project record current so a
                    // crashed daemon restarts with this shard's latest
                    // file tree. By the time the rerun response is
                    // written, the record is durable — a SIGKILL any
                    // moment after still recovers.
                    if let Some(store) = &self.store {
                        if edits_applied > 0 || !store.contains(NS_SERVE, shard.root_hash) {
                            self.persist_project(&shard, &session);
                        }
                    }
                    return Response::ok(format!(
                        "{{\"ok\": true, \"op\": \"rerun\", \"reruns\": {reruns}, \
                         \"edits_applied\": {edits_applied}, \"superseded\": {superseded_rounds}, \
                         \"generation\": {target_gen}, \"fully_cached\": {fully_cached}, \
                         \"summary\": \"{}\"}}",
                        escape_json(&summary)
                    ));
                }
                Err(YallaError::Cancelled) => {
                    // Superseded (or injected): the attempt stopped at a
                    // stage boundary, published nothing, and left every
                    // cache key-consistent. Fold the newer edits in and
                    // go again.
                    clear_active();
                    superseded_rounds += 1;
                    yalla_obs::count(names::SERVE_CANCELLED, 1);
                    yalla_obs::observe(
                        names::LATENCY_SERVE_RERUN_CANCELLED,
                        attempt_started.elapsed(),
                    );
                    shard.published.lock().expect("published lock").cancelled += 1;
                    if yalla_obs::log::is_active() {
                        yalla_obs::log::emit(
                            "cancel",
                            &[
                                ("project", shard.name.as_str().into()),
                                ("generation", yalla_obs::ArgValue::Int(target_gen as i64)),
                                (
                                    "checkpoints",
                                    yalla_obs::ArgValue::Int(token.checkpoints() as i64),
                                ),
                            ],
                        );
                    }
                }
                Err(e) => {
                    clear_active();
                    return Response::error(e.to_string());
                }
            }
        }
    }

    fn handle_get(&self, req: &JsonValue) -> Response {
        let project = match str_field(req, "project") {
            Ok(p) => p,
            Err(e) => return Response::error(e),
        };
        let artifact = match str_field(req, "artifact") {
            Ok(a) => a.to_string(),
            Err(e) => return Response::error(e),
        };
        let shard = match self.shard(project) {
            Ok(s) => s,
            Err(e) => return Response::error(e),
        };
        // Reads come off the published slot — a rerun mid-pipeline never
        // blocks a `get`, which simply sees the previous run's artifacts.
        let published = shard.published.lock().expect("published lock");
        let Some(last) = &published.last else {
            return Response::error(format!("project `{project}` has no completed run"));
        };
        let text = match artifact.as_str() {
            "lightweight" => last.lightweight_header.clone(),
            "wrappers" => last.wrappers_file.clone(),
            "report" => format!("{:?}", last.report.verification),
            other => match other.strip_prefix("source:") {
                Some(path) => match last.rewritten_sources.get(path) {
                    Some(text) => text.clone(),
                    None => return Response::error(format!("no rewritten source `{path}`")),
                },
                None => return Response::error(format!("unknown artifact `{other}`")),
            },
        };
        Response::ok(format!(
            "{{\"ok\": true, \"op\": \"get\", \"artifact\": \"{}\", \"text\": \"{}\"}}",
            escape_json(&artifact),
            escape_json(&text)
        ))
    }

    fn handle_status(&self) -> Response {
        let shards = self.shards.lock().expect("shards lock");
        let mut rows: Vec<String> = Vec::with_capacity(shards.len());
        let mut sorted: Vec<&Arc<ProjectShard>> = shards.values().collect();
        sorted.sort_by(|a, b| a.name.cmp(&b.name));
        for shard in sorted {
            // Queue + published locks only: status stays microseconds
            // even while a rerun holds the session. `generation` is the
            // last *published* generation — a cancelled attempt never
            // shows up here as current.
            let pending = shard.edits.lock().expect("edits lock").pending.len();
            let pubd = shard.published.lock().expect("published lock");
            rows.push(format!(
                "{{\"project\": \"{}\", \"shard\": \"{:016x}\", \"reruns\": {}, \"cancelled\": {}, \"generation\": {}, \"pending_edits\": {pending}, \"last_summary\": \"{}\"}}",
                escape_json(&shard.name),
                shard.root_hash,
                pubd.reruns,
                pubd.cancelled,
                pubd.generation,
                escape_json(&pubd.last_summary)
            ));
        }
        drop(shards);
        let metrics = yalla_obs::global().metrics();
        let by_class: Vec<String> = names::REQUEST_CLASSES
            .iter()
            .map(|op| {
                format!(
                    "\"{op}\": {}",
                    metrics.counter(&names::serve_requests(op)).get()
                )
            })
            .collect();
        let store_hits = metrics.counter(names::STORE_HITS).get();
        let store_lookups = store_hits + metrics.counter(names::STORE_MISSES).get();
        let hit_ratio = if store_lookups > 0 {
            store_hits as f64 / store_lookups as f64
        } else {
            0.0
        };
        Response::ok(format!(
            "{{\"ok\": true, \"op\": \"status\", \"workers\": {}, \"requests\": {}, \
             \"uptime_us\": {}, \"requests_by_class\": {{{}}}, \
             \"store_lookups\": {store_lookups}, \"store_hit_ratio\": {hit_ratio:.4}, \
             \"shards\": [{}]}}",
            self.exec.workers(),
            self.requests(),
            self.start.elapsed().as_micros(),
            by_class.join(", "),
            rows.join(", ")
        ))
    }

    /// The `metrics` op: the live telemetry state — counters, gauges,
    /// and latency-histogram quantiles — rendered in Prometheus text
    /// exposition format. The snapshot is plain atomic reads; no worker
    /// pauses for a scrape.
    fn handle_metrics(&self) -> Response {
        let text = yalla_obs::export::prometheus(yalla_obs::global());
        Response::ok(format!(
            "{{\"ok\": true, \"op\": \"metrics\", \"text\": \"{}\"}}",
            escape_json(&text)
        ))
    }

    /// Number of warm shards (`n` distinct project trees).
    pub fn shard_count(&self) -> usize {
        self.shards.lock().expect("shards lock").len()
    }
}

#[cfg(unix)]
pub use unix_server::{client_request, Server};

#[cfg(unix)]
mod unix_server {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::{Path, PathBuf};
    use std::thread::JoinHandle;

    /// A running `yalla serve` daemon on a Unix socket.
    ///
    /// One thread accepts connections; each connection gets a handler
    /// thread reading request lines and writing response lines in order.
    /// A `shutdown` request (from any client) stops the accept loop and
    /// joins every handler.
    #[derive(Debug)]
    pub struct Server {
        state: Arc<ServeState>,
        socket: PathBuf,
        stop: Arc<AtomicBool>,
        accept_thread: Option<JoinHandle<()>>,
    }

    impl Server {
        /// Binds `socket` (removing any stale file) and starts serving.
        /// Reruns execute on `exec`. Persists to the process-global store
        /// (if `YALLA_CACHE_DIR` is set).
        ///
        /// # Errors
        ///
        /// Propagates socket bind failures.
        pub fn start(socket: &Path, exec: Executor) -> std::io::Result<Server> {
            Server::start_with_store(socket, exec, Store::global())
        }

        /// Like [`Server::start`] with an explicit on-disk store: the
        /// warm pool is rebuilt from persisted project records before the
        /// socket accepts its first connection.
        ///
        /// # Errors
        ///
        /// Propagates socket bind failures.
        pub fn start_with_store(
            socket: &Path,
            exec: Executor,
            store: Option<Arc<Store>>,
        ) -> std::io::Result<Server> {
            let _ = std::fs::remove_file(socket);
            let listener = UnixListener::bind(socket)?;
            listener.set_nonblocking(true)?;
            let state = Arc::new(ServeState::with_store(exec, store));
            let stop = Arc::new(AtomicBool::new(false));
            let accept_thread = {
                let state = Arc::clone(&state);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name("yalla-serve-accept".into())
                    .spawn(move || accept_loop(listener, state, stop))
                    .expect("spawn accept thread")
            };
            Ok(Server {
                state,
                socket: socket.to_path_buf(),
                stop,
                accept_thread: Some(accept_thread),
            })
        }

        /// The daemon's shared state (for in-process inspection).
        pub fn state(&self) -> &Arc<ServeState> {
            &self.state
        }

        /// The socket path this server listens on.
        pub fn socket(&self) -> &Path {
            &self.socket
        }

        /// True once a `shutdown` request was handled.
        pub fn is_stopped(&self) -> bool {
            self.stop.load(Ordering::Acquire)
        }

        /// Requests shutdown (as if a client had sent `shutdown`).
        pub fn shutdown(&self) {
            self.stop.store(true, Ordering::Release);
        }

        /// Blocks until the accept loop and every connection handler have
        /// exited. Call after [`Server::shutdown`] (or after a client sent
        /// `shutdown`) for a clean stop.
        pub fn join(mut self) {
            if let Some(handle) = self.accept_thread.take() {
                let _ = handle.join();
            }
            let _ = std::fs::remove_file(&self.socket);
        }
    }

    impl Drop for Server {
        fn drop(&mut self) {
            self.stop.store(true, Ordering::Release);
            if let Some(handle) = self.accept_thread.take() {
                let _ = handle.join();
            }
            let _ = std::fs::remove_file(&self.socket);
        }
    }

    fn accept_loop(listener: UnixListener, state: Arc<ServeState>, stop: Arc<AtomicBool>) {
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        while !stop.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&state);
                    let stop = Arc::clone(&stop);
                    handlers.push(
                        std::thread::Builder::new()
                            .name("yalla-serve-conn".into())
                            .spawn(move || handle_connection(stream, state, stop))
                            .expect("spawn connection handler"),
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
        stop.store(true, Ordering::Release);
        for handle in handlers {
            let _ = handle.join();
        }
    }

    fn handle_connection(stream: UnixStream, state: Arc<ServeState>, stop: Arc<AtomicBool>) {
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .ok();
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => break, // client hung up
                Ok(_) => {
                    let trimmed = line.trim();
                    if !trimmed.is_empty() {
                        let response = state.handle_line(trimmed);
                        if writer
                            .write_all(response.text.as_bytes())
                            .and_then(|()| writer.write_all(b"\n"))
                            .and_then(|()| writer.flush())
                            .is_err()
                        {
                            break;
                        }
                        if response.shutdown {
                            stop.store(true, Ordering::Release);
                            break;
                        }
                    }
                    line.clear();
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Partial line (if any) stays buffered in `line`.
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    }

    /// Client helper: sends one request line on `stream` and reads one
    /// response line, parsed as JSON. Used by tests and the throughput
    /// bench.
    ///
    /// # Errors
    ///
    /// Returns I/O failures and response-parse failures as strings.
    pub fn client_request(stream: &mut UnixStream, request: &str) -> Result<JsonValue, String> {
        stream
            .write_all(request.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return Err("server closed the connection".into()),
                Ok(_) => break,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => return Err(format!("recv: {e}")),
            }
        }
        yalla_obs::json::parse(line.trim()).map_err(|e| format!("bad response JSON: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_req(project: &str) -> String {
        format!(
            "{{\"op\": \"open\", \"project\": \"{project}\", \"header\": \"lib.hpp\", \
             \"sources\": [\"main.cpp\"], \"files\": {{\
             \"lib.hpp\": \"namespace K {{ class W {{ public: int id() const; }}; }}\\n\", \
             \"main.cpp\": \"#include \\\"lib.hpp\\\"\\nint f(K::W& w) {{ return w.id(); }}\\n\"}}}}"
        )
    }

    fn state() -> ServeState {
        ServeState::new(Executor::new(2))
    }

    #[test]
    fn open_rerun_get_roundtrip() {
        let state = state();
        let r = state.handle_line(&open_req("p1"));
        assert!(r.text.contains("\"created\": true"), "{}", r.text);
        let r = state.handle_line("{\"op\": \"rerun\", \"project\": \"p1\"}");
        assert!(r.text.contains("\"ok\": true"), "{}", r.text);
        assert!(r.text.contains("\"fully_cached\": false"), "{}", r.text);
        let r = state
            .handle_line("{\"op\": \"get\", \"project\": \"p1\", \"artifact\": \"lightweight\"}");
        assert!(r.text.contains("class W;"), "{}", r.text);
        // A second rerun with no edits is fully cached.
        let r = state.handle_line("{\"op\": \"rerun\", \"project\": \"p1\"}");
        assert!(r.text.contains("\"fully_cached\": true"), "{}", r.text);
    }

    #[test]
    fn edits_batch_until_the_next_rerun() {
        let state = state();
        state.handle_line(&open_req("p1"));
        state.handle_line("{\"op\": \"rerun\", \"project\": \"p1\"}");
        let r = state.handle_line(
            "{\"op\": \"edit\", \"project\": \"p1\", \"path\": \"main.cpp\", \
             \"text\": \"#include \\\"lib.hpp\\\"\\nint g(K::W& w) { return w.id() + 1; }\\n\"}",
        );
        assert!(r.text.contains("\"pending\": 1"), "{}", r.text);
        let r = state.handle_line("{\"op\": \"rerun\", \"project\": \"p1\"}");
        assert!(r.text.contains("\"edits_applied\": 1"), "{}", r.text);
        let r = state.handle_line(
            "{\"op\": \"get\", \"project\": \"p1\", \"artifact\": \"source:main.cpp\"}",
        );
        assert!(r.text.contains("int g("), "{}", r.text);
    }

    #[test]
    fn identical_trees_share_a_shard() {
        let state = state();
        let a = state.handle_line(&open_req("alpha"));
        let b = state.handle_line(&open_req("beta"));
        assert!(a.text.contains("\"created\": true"));
        assert!(b.text.contains("\"created\": false"), "{}", b.text);
        assert_eq!(state.shard_count(), 1);
        // Warm state carries across names: a rerun under `alpha` makes the
        // first `beta` rerun fully cached.
        state.handle_line("{\"op\": \"rerun\", \"project\": \"alpha\"}");
        let r = state.handle_line("{\"op\": \"rerun\", \"project\": \"beta\"}");
        assert!(r.text.contains("\"fully_cached\": true"), "{}", r.text);
    }

    #[test]
    fn unknown_project_and_bad_json_are_rejected() {
        let state = state();
        let r = state.handle_line("{\"op\": \"rerun\", \"project\": \"nope\"}");
        assert!(r.text.contains("\"ok\": false"));
        let r = state.handle_line("this is not json");
        assert!(r.text.contains("\"ok\": false"));
        let r = state.handle_line("{\"op\": \"frobnicate\"}");
        assert!(r.text.contains("unknown op"));
    }

    #[test]
    fn edits_to_unknown_files_are_rejected_cleanly() {
        let state = state();
        state.handle_line(&open_req("p1"));
        let r = state.handle_line(
            "{\"op\": \"edit\", \"project\": \"p1\", \"path\": \"ghost.cpp\", \"text\": \"x\"}",
        );
        assert!(r.text.contains("\"ok\": false"), "{}", r.text);
        assert!(r.text.contains("ghost.cpp"), "{}", r.text);
    }

    #[test]
    fn status_lists_shards_sorted_by_name() {
        let state = state();
        state.handle_line(&open_req("zz"));
        let r = state.handle_line("{\"op\": \"status\"}");
        assert!(r.text.contains("\"workers\": 2"), "{}", r.text);
        assert!(r.text.contains("\"project\": \"zz\""), "{}", r.text);
        let parsed = yalla_obs::json::parse(&r.text).expect("status is valid JSON");
        assert_eq!(
            parsed
                .get("shards")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(1)
        );
    }

    #[test]
    fn injected_cancellation_retries_and_reports_supersede() {
        let state = state();
        state.handle_line(&open_req("p1"));
        // Trip the first attempt's token at its first checkpoint (run
        // entry) — the same path a superseding edit takes, landed
        // deterministically. The rerun must absorb the cancel, retry,
        // and still answer correctly.
        state.set_cancel_every(1);
        let r = state.handle_line("{\"op\": \"rerun\", \"project\": \"p1\"}");
        state.set_cancel_every(0);
        assert!(r.text.contains("\"ok\": true"), "{}", r.text);
        assert!(r.text.contains("\"superseded\": 1"), "{}", r.text);
        let r = state
            .handle_line("{\"op\": \"get\", \"project\": \"p1\", \"artifact\": \"lightweight\"}");
        assert!(r.text.contains("class W;"), "{}", r.text);
        let status = state.handle_line("{\"op\": \"status\"}");
        assert!(status.text.contains("\"cancelled\": 1"), "{}", status.text);
        // The cancelled attempt published nothing: exactly one rerun.
        assert!(status.text.contains("\"reruns\": 1"), "{}", status.text);
    }

    #[test]
    fn cancelled_attempts_leave_caches_byte_consistent() {
        // A run cancelled at every possible boundary, then a clean run:
        // the artifacts must be byte-identical to a never-cancelled
        // shard's. Cancel points only stop *between* stages, so no
        // half-written artifact can ever be published or cached.
        let clean = state();
        clean.handle_line(&open_req("p1"));
        clean.handle_line("{\"op\": \"rerun\", \"project\": \"p1\"}");
        let want = clean
            .handle_line("{\"op\": \"get\", \"project\": \"p1\", \"artifact\": \"lightweight\"}");

        let state = state();
        state.handle_line(&open_req("p1"));
        for boundary in 1..=8 {
            state.set_cancel_every(boundary);
            let r = state.handle_line("{\"op\": \"rerun\", \"project\": \"p1\"}");
            assert!(r.text.contains("\"ok\": true"), "{}", r.text);
        }
        state.set_cancel_every(0);
        let got = state
            .handle_line("{\"op\": \"get\", \"project\": \"p1\", \"artifact\": \"lightweight\"}");
        let artifact = |r: &Response| {
            yalla_obs::json::parse(&r.text)
                .expect("valid JSON")
                .get("text")
                .and_then(JsonValue::as_str)
                .expect("artifact text")
                .to_string()
        };
        assert_eq!(artifact(&got), artifact(&want));
    }

    fn temp_store(tag: &str) -> Arc<Store> {
        let dir =
            std::env::temp_dir().join(format!("yalla-serve-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(Store::open(dir).expect("open store"))
    }

    #[test]
    fn warm_pool_rebuilds_from_store_across_daemon_generations() {
        let store = temp_store("restart");
        let dir = store.dir().to_path_buf();

        // Generation 1: open, warm up, edit, rerun. The project record and
        // the run bundle are on disk by the time the rerun responds.
        let gen1 = ServeState::with_store(Executor::new(2), Some(Arc::clone(&store)));
        gen1.handle_line(&open_req("p1"));
        gen1.handle_line("{\"op\": \"rerun\", \"project\": \"p1\"}");
        gen1.handle_line(
            "{\"op\": \"edit\", \"project\": \"p1\", \"path\": \"main.cpp\", \
             \"text\": \"#include \\\"lib.hpp\\\"\\nint g(K::W& w) { return w.id() + 7; }\\n\"}",
        );
        gen1.handle_line("{\"op\": \"rerun\", \"project\": \"p1\"}");
        let want = gen1.handle_line(
            "{\"op\": \"get\", \"project\": \"p1\", \"artifact\": \"source:main.cpp\"}",
        );
        drop(gen1); // daemon "dies"; only the cache dir survives

        // Generation 2: a fresh state on the same dir rebuilds the pool
        // before any request, and its first rerun is fully disk-warm.
        let gen2 = ServeState::with_store(
            Executor::new(2),
            Some(Arc::new(Store::open(&dir).expect("reopen store"))),
        );
        assert_eq!(gen2.shard_count(), 1, "pool rebuilt from project records");
        let r = gen2.handle_line("{\"op\": \"rerun\", \"project\": \"p1\"}");
        assert!(r.text.contains("\"ok\": true"), "{}", r.text);
        assert!(
            r.text.contains("\"fully_cached\": true"),
            "first rerun after restart should be disk-warm: {}",
            r.text
        );
        let got = gen2.handle_line(
            "{\"op\": \"get\", \"project\": \"p1\", \"artifact\": \"source:main.cpp\"}",
        );
        assert!(
            got.text.contains("+ 7"),
            "edited tree survived: {}",
            got.text
        );
        // Compare the artifact payloads, not the raw lines — request ids
        // differ across daemon generations by design.
        let artifact = |r: &Response| {
            yalla_obs::json::parse(&r.text)
                .expect("valid JSON")
                .get("text")
                .and_then(JsonValue::as_str)
                .expect("artifact text")
                .to_string()
        };
        assert_eq!(
            artifact(&got),
            artifact(&want),
            "artifacts identical across restart"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn undecodable_project_records_are_skipped_not_fatal() {
        let store = temp_store("corrupt-record");
        let dir = store.dir().to_path_buf();
        store.put(NS_SERVE, 0xdead, b"not a project record");
        let state = ServeState::with_store(Executor::new(1), Some(Arc::clone(&store)));
        assert_eq!(state.shard_count(), 0, "garbage record ignored");
        // The daemon still serves: a fresh open works normally.
        let r = state.handle_line(&open_req("p1"));
        assert!(r.text.contains("\"created\": true"), "{}", r.text);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn responses_are_valid_json() {
        let state = state();
        for line in [
            open_req("p1").as_str(),
            "{\"op\": \"rerun\", \"project\": \"p1\"}",
            "{\"op\": \"get\", \"project\": \"p1\", \"artifact\": \"wrappers\"}",
            "{\"op\": \"get\", \"project\": \"p1\", \"artifact\": \"report\"}",
            "{\"op\": \"status\"}",
            "{\"op\": \"metrics\"}",
            "not json",
            "{\"op\": \"shutdown\"}",
        ] {
            let r = state.handle_line(line);
            yalla_obs::json::parse(&r.text)
                .unwrap_or_else(|e| panic!("invalid response for {line}: {e}\n{}", r.text));
        }
    }

    #[test]
    fn responses_carry_monotonic_request_ids() {
        let state = state();
        let id = |r: &Response| {
            yalla_obs::json::parse(&r.text)
                .expect("valid JSON")
                .get("req")
                .and_then(JsonValue::as_f64)
                .expect("every response is stamped with a req id")
        };
        let a = id(&state.handle_line("{\"op\": \"status\"}"));
        let b = id(&state.handle_line("{\"op\": \"status\"}"));
        // Errors are requests too: they consume an id.
        let c = id(&state.handle_line("not json"));
        let d = id(&state.handle_line("{\"op\": \"status\"}"));
        assert!(a >= 1.0);
        assert_eq!(b, a + 1.0);
        assert_eq!(c, b + 1.0);
        assert_eq!(d, c + 1.0);
    }

    #[test]
    fn status_reports_uptime_class_totals_and_hit_ratio() {
        let state = state();
        state.handle_line(&open_req("p1"));
        state.handle_line("{\"op\": \"rerun\", \"project\": \"p1\"}");
        let r = state.handle_line("{\"op\": \"status\"}");
        let parsed = yalla_obs::json::parse(&r.text).expect("valid JSON");
        assert!(
            parsed
                .get("uptime_us")
                .and_then(JsonValue::as_f64)
                .is_some(),
            "{}",
            r.text
        );
        let by_class = parsed.get("requests_by_class").expect("per-class totals");
        // Counters are process-global, so other tests may have bumped
        // them too — assert presence and a sane floor, not exact values.
        for op in [
            "open", "edit", "rerun", "get", "status", "metrics", "shutdown",
        ] {
            assert!(
                by_class.get(op).and_then(JsonValue::as_f64).is_some(),
                "{}",
                r.text
            );
        }
        assert!(by_class.get("rerun").and_then(JsonValue::as_f64).unwrap() >= 1.0);
        let ratio = parsed
            .get("store_hit_ratio")
            .and_then(JsonValue::as_f64)
            .expect("hit ratio present");
        assert!((0.0..=1.0).contains(&ratio), "{ratio}");
        assert!(
            parsed
                .get("store_lookups")
                .and_then(JsonValue::as_f64)
                .is_some(),
            "{}",
            r.text
        );
    }

    #[test]
    fn metrics_op_returns_prometheus_text() {
        let state = state();
        state.handle_line(&open_req("p1"));
        state.handle_line("{\"op\": \"rerun\", \"project\": \"p1\"}");
        let r = state.handle_line("{\"op\": \"metrics\"}");
        let parsed = yalla_obs::json::parse(&r.text).expect("valid JSON");
        let text = parsed
            .get("text")
            .and_then(JsonValue::as_str)
            .expect("metrics text");
        assert!(
            text.contains("# TYPE yalla_serve_requests counter"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE yalla_latency_serve_rerun summary"),
            "{text}"
        );
        assert!(
            text.contains("yalla_latency_serve_rerun{quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(text.contains("yalla_latency_serve_rerun_count"), "{text}");
    }
}
