//! On-disk persistence of session artifacts (DESIGN.md §11).
//!
//! The in-memory stage caches hold ASTs and symbol tables — structures
//! that are impractical to serialize and cheap to avoid serializing:
//! what a *restarted* process actually needs is not the intermediate
//! state but the ability to prove "nothing changed" and hand back the
//! previous answer. So the disk tier persists exactly three payloads:
//!
//! 1. **Parse manifests** (`parse` namespace, written by
//!    [`yalla_cpp::cache::ParseCache`]): the dependency closure with
//!    content hashes. Validating one recovers the closure hash without
//!    preprocessing anything.
//! 2. **Run bundles** (`run` namespace, this module): every final
//!    artifact of one pipeline run — lightweight header, wrappers file,
//!    rewritten sources, and the report's counts/diagnostics/stats —
//!    keyed by the closure hash plus options plus every source's content
//!    hash. A validated manifest + a bundle hit is a *whole-run* disk
//!    hit: all six stages report `hit`, nothing is recomputed.
//! 3. **Project records** (`serve` namespace, this module): what `yalla
//!    serve` needs to rebuild a warm shard after a crash — name, options,
//!    and the current file tree.
//!
//! The tradeoff is deliberate: a fully-warm restart costs zero
//! recomputation, while a restart followed by an edit recomputes the
//! whole pipeline once (there is no partially-warm disk state to resume
//! from) and is then warm again, both in memory and on disk.
//!
//! Bundles whose verification found incomplete-type violations are never
//! persisted — violations carry source spans that do not survive
//! serialization, and a failing run is not worth resuming into anyway.

use std::collections::BTreeMap;
use std::time::Duration;

use yalla_cpp::hash::Fnv64;
use yalla_cpp::vfs::Vfs;
use yalla_store::module::{ModuleBuilder, ModuleReader, PartitionBuilder};

use crate::engine::{Options, SubstitutionResult, Timings};
use crate::plan::{Diagnostic, DiagnosticKind, Plan};
use crate::report::{Report, TuStats, Verification};

/// Bundle payload format version; bump on any layout change so old
/// bundles degrade to misses (the record decoder treats a short or
/// reshaped payload as corrupt, but an explicit version keeps additive
/// changes honest too).
const BUNDLE_VERSION: u8 = 2;

/// Module kind byte of run-bundle payloads (DESIGN.md §13).
pub(crate) const MODULE_KIND_RUN: u8 = 2;
/// Module kind byte of serve project records.
pub(crate) const MODULE_KIND_PROJECT: u8 = 3;

// Run-bundle partitions.
/// Var: bundle version, report counts, TU stats, verification flags.
const PART_META: u8 = 1;
/// Var: lightweight header text, wrappers file text.
const PART_TEXTS: u8 = 2;
/// Fixed 8-byte rows: `(path StrRef, text StrRef)` per rewritten source.
const PART_SOURCES: u8 = 3;
/// Fixed 5-byte rows: `(kind u8, message StrRef)` per diagnostic.
const PART_DIAGS: u8 = 4;
/// Fixed 8-byte rows: `(path StrRef, text StrRef)` per project file
/// (project records only).
const PART_FILES: u8 = 5;

/// Key of the whole-run artifact bundle: the parse closure (which covers
/// the header, the main source, and everything transitively included)
/// plus every option that shapes the output plus every source file's
/// content hash (sources outside the main TU's closure still get
/// rewritten, so their text is an input too).
pub(crate) fn run_key_of(closure_hash: u64, opts: &Options, vfs: &Vfs) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(closure_hash);
    h.write_str(&opts.header);
    h.write_str(&opts.lightweight_name);
    h.write_str(&opts.wrappers_name);
    for (k, v) in &opts.defines {
        h.write_str(k);
        h.write_str(v);
    }
    for e in &opts.extra_symbols {
        h.write_str(e);
    }
    h.write_u64(u64::from(opts.verify));
    for s in &opts.sources {
        h.write_str(s);
        h.write_u64(vfs.hash_of(s).unwrap_or(0));
    }
    // Empty for classic single-TU runs, so their keys are unchanged.
    for r in &opts.tu_roots {
        h.write_str(r);
    }
    h.finish()
}

fn diag_tag(kind: DiagnosticKind) -> u8 {
    match kind {
        DiagnosticKind::NestedClassUnsupported => 0,
        DiagnosticKind::DeductionFailed => 1,
        DiagnosticKind::UnknownSymbol => 2,
        DiagnosticKind::Note => 3,
    }
}

fn diag_kind(tag: u8) -> Option<DiagnosticKind> {
    Some(match tag {
        0 => DiagnosticKind::NestedClassUnsupported,
        1 => DiagnosticKind::DeductionFailed,
        2 => DiagnosticKind::UnknownSymbol,
        3 => DiagnosticKind::Note,
        _ => return None,
    })
}

/// Encodes a run's final artifacts as a module payload (kind
/// [`MODULE_KIND_RUN`]), or `None` when the run is not persistable
/// (verification violations carry spans). Paths, texts, and messages are
/// interned into the module's string table; per-source and per-diagnostic
/// data are fixed-layout rows holding `StrRef`s.
pub fn encode_run(result: &SubstitutionResult) -> Option<Vec<u8>> {
    if !result.report.verification.violations.is_empty() {
        return None;
    }
    let r = &result.report;
    let mut m = ModuleBuilder::new(MODULE_KIND_RUN);

    let mut meta = PartitionBuilder::var(PART_META);
    {
        let w = meta.row();
        w.put_u8(BUNDLE_VERSION);
        for count in [
            r.classes_forward_declared,
            r.functions_forward_declared,
            r.function_wrappers,
            r.method_wrappers,
            r.functors,
            r.enums_replaced,
            r.explicit_instantiations,
        ] {
            w.put_varint(count as u64);
        }
        for stat in [r.before, r.after] {
            w.put_varint(stat.loc as u64);
            w.put_varint(stat.headers as u64);
        }
        w.put_u8(u8::from(r.verification.sources_parse));
        w.put_u8(u8::from(r.verification.wrappers_parse));
    }
    m.push(meta);

    let mut texts = PartitionBuilder::var(PART_TEXTS);
    {
        let w = texts.row();
        w.put_vstr(&result.lightweight_header);
        w.put_vstr(&result.wrappers_file);
    }
    m.push(texts);

    let mut sources = PartitionBuilder::fixed(PART_SOURCES, 8);
    for (path, text) in &result.rewritten_sources {
        let path = m.intern(path);
        let text = m.intern(text);
        let row = sources.row();
        row.put_u32(path.0);
        row.put_u32(text.0);
    }
    m.push(sources);

    let mut diags = PartitionBuilder::fixed(PART_DIAGS, 5);
    for d in &r.diagnostics {
        let message = m.intern(&d.message);
        let row = diags.row();
        row.put_u8(diag_tag(d.kind));
        row.put_u32(message.0);
    }
    m.push(diags);

    Some(m.finish())
}

/// Decodes a bundle payload back into a [`SubstitutionResult`]. Timings
/// are zero (nothing ran) and diagnostic spans are gone (not persisted);
/// everything else is byte-identical to the run that was stored. The
/// module is validated once; every string is read in place and copied
/// exactly once into its owned slot in the result.
pub fn decode_run(bytes: &[u8]) -> Option<SubstitutionResult> {
    let m = ModuleReader::parse(bytes).ok()?;
    if m.kind() != MODULE_KIND_RUN {
        return None;
    }

    let meta = m.part(PART_META)?;
    let mut r = meta.reader();
    if r.get_u8().ok()? != BUNDLE_VERSION {
        return None;
    }
    let mut counts = [0u64; 7];
    for slot in &mut counts {
        *slot = r.get_varint().ok()?;
    }
    let mut stats = [TuStats::default(); 2];
    for stat in &mut stats {
        stat.loc = r.get_varint().ok()? as usize;
        stat.headers = r.get_varint().ok()? as usize;
    }
    let sources_parse = r.get_u8().ok()? != 0;
    let wrappers_parse = r.get_u8().ok()? != 0;
    if !r.is_exhausted() {
        return None;
    }

    let texts = m.part(PART_TEXTS)?;
    let mut r = texts.reader();
    let lightweight_header = r.get_vstr().ok()?.to_string();
    let wrappers_file = r.get_vstr().ok()?.to_string();
    if !r.is_exhausted() {
        return None;
    }

    let mut rewritten_sources = BTreeMap::new();
    for row in m.part(PART_SOURCES)?.iter() {
        let path = m.get(row.str_at(0).ok()?).ok()?;
        let text = m.get(row.str_at(4).ok()?).ok()?;
        rewritten_sources.insert(path.to_string(), text.to_string());
    }

    let diags = m.part(PART_DIAGS)?;
    let mut diagnostics = Vec::with_capacity(diags.rows());
    for row in diags.iter() {
        let kind = diag_kind(row.u8_at(0).ok()?)?;
        let message = m.get(row.str_at(1).ok()?).ok()?.to_string();
        diagnostics.push(Diagnostic {
            kind,
            message,
            span: None,
        });
    }

    let report = Report {
        classes_forward_declared: counts[0] as usize,
        functions_forward_declared: counts[1] as usize,
        function_wrappers: counts[2] as usize,
        method_wrappers: counts[3] as usize,
        functors: counts[4] as usize,
        enums_replaced: counts[5] as usize,
        explicit_instantiations: counts[6] as usize,
        diagnostics: diagnostics.clone(),
        before: stats[0],
        after: stats[1],
        verification: Verification {
            sources_parse,
            wrappers_parse,
            violations: Vec::new(),
        },
    };
    Some(SubstitutionResult {
        lightweight_header,
        wrappers_file,
        rewritten_sources,
        plan: Plan {
            diagnostics,
            ..Plan::default()
        },
        report,
        timings: Timings::default(),
    })
}

/// What `yalla serve` persists per shard so a restarted daemon can
/// rebuild its warm pool: the project's identity, options, and the
/// *current* file tree (edits included — the shard key stays the opened
/// tree's hash while the contents evolve, matching the daemon's
/// reattach-by-open-hash semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ProjectRecord {
    pub name: String,
    pub header: String,
    pub sources: Vec<String>,
    pub build_latency: Duration,
    pub files: Vec<(String, String)>,
}

impl ProjectRecord {
    /// Encodes as a module of kind [`MODULE_KIND_PROJECT`]: identity and
    /// source list in the meta partition (as `StrRef` varints), the file
    /// tree as fixed `(path, text)` rows over the string table.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut m = ModuleBuilder::new(MODULE_KIND_PROJECT);
        let name = m.intern(&self.name);
        let header = m.intern(&self.header);
        let sources: Vec<_> = self.sources.iter().map(|s| m.intern(s)).collect();
        let mut meta = PartitionBuilder::var(PART_META);
        {
            let w = meta.row();
            w.put_u8(BUNDLE_VERSION);
            w.put_varint(u64::from(name.0));
            w.put_varint(u64::from(header.0));
            w.put_varint(self.build_latency.as_micros() as u64);
            w.put_varint(sources.len() as u64);
            for s in sources {
                w.put_varint(u64::from(s.0));
            }
        }
        m.push(meta);
        let mut files = PartitionBuilder::fixed(PART_FILES, 8);
        for (path, text) in &self.files {
            let path = m.intern(path);
            let text = m.intern(text);
            let row = files.row();
            row.put_u32(path.0);
            row.put_u32(text.0);
        }
        m.push(files);
        m.finish()
    }

    pub(crate) fn decode(bytes: &[u8]) -> Option<ProjectRecord> {
        let m = ModuleReader::parse(bytes).ok()?;
        if m.kind() != MODULE_KIND_PROJECT {
            return None;
        }
        let str_of = |r: &mut yalla_store::codec::ByteReader<'_>| -> Option<String> {
            let idx = u32::try_from(r.get_varint().ok()?).ok()?;
            Some(m.get(yalla_store::module::StrRef(idx)).ok()?.to_string())
        };
        let meta = m.part(PART_META)?;
        let mut r = meta.reader();
        if r.get_u8().ok()? != BUNDLE_VERSION {
            return None;
        }
        let name = str_of(&mut r)?;
        let header = str_of(&mut r)?;
        let build_latency = Duration::from_micros(r.get_varint().ok()?);
        let n_sources = r.get_varint().ok()?;
        let mut sources = Vec::with_capacity(usize::try_from(n_sources).ok()?);
        for _ in 0..n_sources {
            sources.push(str_of(&mut r)?);
        }
        if !r.is_exhausted() {
            return None;
        }
        let files_part = m.part(PART_FILES)?;
        let mut files = Vec::with_capacity(files_part.rows());
        for row in files_part.iter() {
            let path = m.get(row.str_at(0).ok()?).ok()?.to_string();
            let text = m.get(row.str_at(4).ok()?).ok()?.to_string();
            files.push((path, text));
        }
        Some(ProjectRecord {
            name,
            header,
            sources,
            build_latency,
            files,
        })
    }
}

/// Renders a decoded run bundle as the line-oriented text form — the
/// debug/goldens path the binary format replaced on the wire (`yalla
/// dump --format=text`). Also the size baseline the store bench reports
/// binary shrinkage against.
pub fn render_text(result: &SubstitutionResult) -> String {
    use std::fmt::Write;
    let r = &result.report;
    let mut out = String::new();
    let section = |out: &mut String, title: &str, body: &str| {
        let _ = writeln!(out, "=== {title} ({} bytes)", body.len());
        out.push_str(body);
        if !body.ends_with('\n') {
            out.push('\n');
        }
    };
    let _ = writeln!(out, "yalla run bundle v{BUNDLE_VERSION} (text)");
    let _ = writeln!(
        out,
        "counts: classes_fwd={} functions_fwd={} fn_wrappers={} method_wrappers={} functors={} enums={} instantiations={}",
        r.classes_forward_declared,
        r.functions_forward_declared,
        r.function_wrappers,
        r.method_wrappers,
        r.functors,
        r.enums_replaced,
        r.explicit_instantiations,
    );
    let _ = writeln!(
        out,
        "stats: before={}loc/{}hdr after={}loc/{}hdr verify={}/{}",
        r.before.loc,
        r.before.headers,
        r.after.loc,
        r.after.headers,
        r.verification.sources_parse,
        r.verification.wrappers_parse,
    );
    for d in &r.diagnostics {
        let _ = writeln!(out, "diag[{}]: {}", diag_tag(d.kind), d.message);
    }
    section(&mut out, "lightweight header", &result.lightweight_header);
    section(&mut out, "wrappers", &result.wrappers_file);
    for (path, text) in &result.rewritten_sources {
        section(&mut out, &format!("source {path}"), text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> SubstitutionResult {
        let mut rewritten = BTreeMap::new();
        rewritten.insert("main.cpp".to_string(), "int main() {}\n".to_string());
        rewritten.insert("b.cpp".to_string(), "int b;\n".to_string());
        SubstitutionResult {
            lightweight_header: "class W;\n".into(),
            wrappers_file: "#include \"lib.hpp\"\n".into(),
            rewritten_sources: rewritten,
            plan: Plan::default(),
            report: Report {
                classes_forward_declared: 3,
                function_wrappers: 2,
                diagnostics: vec![Diagnostic {
                    kind: DiagnosticKind::Note,
                    message: "nothing used".into(),
                    span: None,
                }],
                before: TuStats {
                    loc: 1000,
                    headers: 12,
                },
                after: TuStats { loc: 9, headers: 1 },
                verification: Verification {
                    sources_parse: true,
                    wrappers_parse: true,
                    violations: Vec::new(),
                },
                ..Report::default()
            },
            timings: Timings::default(),
        }
    }

    #[test]
    fn run_bundle_roundtrips() {
        let result = sample_result();
        let bytes = encode_run(&result).expect("persistable");
        let back = decode_run(&bytes).expect("decodes");
        assert_eq!(back.lightweight_header, result.lightweight_header);
        assert_eq!(back.wrappers_file, result.wrappers_file);
        assert_eq!(back.rewritten_sources, result.rewritten_sources);
        let (a, b) = (&back.report, &result.report);
        assert_eq!(a.classes_forward_declared, b.classes_forward_declared);
        assert_eq!(a.function_wrappers, b.function_wrappers);
        assert_eq!(a.before, b.before);
        assert_eq!(a.after, b.after);
        assert_eq!(a.diagnostics.len(), 1);
        assert_eq!(a.diagnostics[0].kind, DiagnosticKind::Note);
        assert_eq!(
            format!("{:?}", a.verification),
            format!("{:?}", b.verification)
        );
    }

    #[test]
    fn runs_with_violations_are_not_persisted() {
        let mut result = sample_result();
        result.report.verification.violations.push(
            yalla_analysis::incomplete::IncompleteViolation {
                class: "K::W".into(),
                reason: "by-value use".into(),
                span: yalla_cpp::loc::Span {
                    file: yalla_cpp::loc::FileId(0),
                    start: 0,
                    end: 1,
                },
            },
        );
        assert!(encode_run(&result).is_none());
    }

    #[test]
    fn truncated_bundles_decode_to_none() {
        let bytes = encode_run(&sample_result()).expect("persistable");
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_run(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_run(&long).is_none(), "trailing garbage");
    }

    #[test]
    fn project_record_roundtrips() {
        let record = ProjectRecord {
            name: "alpha".into(),
            header: "lib.hpp".into(),
            sources: vec!["main.cpp".into(), "b.cpp".into()],
            build_latency: Duration::from_micros(1500),
            files: vec![
                ("lib.hpp".into(), "class W;".into()),
                ("main.cpp".into(), "int main() {}".into()),
            ],
        };
        let back = ProjectRecord::decode(&record.encode()).expect("decodes");
        assert_eq!(back, record);
        assert!(ProjectRecord::decode(&record.encode()[..7]).is_none());
    }

    #[test]
    fn run_key_tracks_every_input() {
        let mut vfs = Vfs::new();
        vfs.add_file("main.cpp", "int a;\n");
        vfs.add_file("b.cpp", "int b;\n");
        let opts = Options {
            header: "lib.hpp".into(),
            sources: vec!["main.cpp".into(), "b.cpp".into()],
            ..Options::default()
        };
        let base = run_key_of(7, &opts, &vfs);
        assert_eq!(run_key_of(7, &opts, &vfs), base, "deterministic");
        assert_ne!(run_key_of(8, &opts, &vfs), base, "closure hash");
        let mut other_opts = opts.clone();
        other_opts.verify = false;
        assert_ne!(run_key_of(7, &other_opts, &vfs), base, "options");
        let mut edited = vfs.clone();
        edited.apply_edit("b.cpp", "int b2;\n").unwrap();
        assert_ne!(run_key_of(7, &opts, &edited), base, "source content");
    }
}
