//! Substitution reports: what was generated, and the before/after
//! translation-unit statistics the paper reports in Table 3.

use std::fmt;

use yalla_analysis::incomplete::IncompleteViolation;

use crate::plan::{Diagnostic, Plan};

/// Size statistics of one translation unit (Table 3 columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TuStats {
    /// Non-blank lines of code entering the compilation.
    pub loc: usize,
    /// Distinct headers included, directly or transitively.
    pub headers: usize,
}

/// Outcome of the post-substitution verification pass.
#[derive(Debug, Clone, Default)]
pub struct Verification {
    /// The rewritten sources re-parse successfully.
    pub sources_parse: bool,
    /// The generated wrappers file parses against the original header.
    pub wrappers_parse: bool,
    /// Incomplete-type rule violations found in the rewritten sources
    /// (empty on success).
    pub violations: Vec<IncompleteViolation>,
}

impl Verification {
    /// True when every check passed.
    pub fn passed(&self) -> bool {
        self.sources_parse && self.wrappers_parse && self.violations.is_empty()
    }
}

/// Summary of one Header Substitution run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Classes forward declared in the lightweight header.
    pub classes_forward_declared: usize,
    /// Functions forward declared as-is.
    pub functions_forward_declared: usize,
    /// Function wrappers generated.
    pub function_wrappers: usize,
    /// Method/field wrappers generated.
    pub method_wrappers: usize,
    /// Functors generated from lambdas.
    pub functors: usize,
    /// Enums replaced by their underlying type.
    pub enums_replaced: usize,
    /// Explicit template instantiations emitted in the wrappers file.
    pub explicit_instantiations: usize,
    /// Diagnostics accumulated by the engine.
    pub diagnostics: Vec<Diagnostic>,
    /// TU statistics before substitution (original include).
    pub before: TuStats,
    /// TU statistics after substitution (lightweight include).
    pub after: TuStats,
    /// Verification outcome.
    pub verification: Verification,
}

impl Report {
    /// Builds the generation counts from a plan.
    pub fn from_plan(plan: &Plan) -> Report {
        Report {
            classes_forward_declared: plan.classes.len(),
            functions_forward_declared: plan.functions.len(),
            function_wrappers: plan.fn_wrappers.len(),
            method_wrappers: plan.method_wrappers.len(),
            functors: plan.functors.len(),
            enums_replaced: plan.enums.len(),
            explicit_instantiations: plan
                .fn_wrappers
                .iter()
                .map(|w| w.instantiations.len())
                .sum::<usize>()
                + plan
                    .method_wrappers
                    .iter()
                    .map(|w| w.instantiations.len())
                    .sum::<usize>(),
            diagnostics: plan.diagnostics.clone(),
            ..Report::default()
        }
    }

    /// LOC reduction factor (before / after), the headline quantity behind
    /// the paper's compile-time speedups.
    pub fn loc_reduction(&self) -> f64 {
        if self.after.loc == 0 {
            return f64::INFINITY;
        }
        self.before.loc as f64 / self.after.loc as f64
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "header substitution report")?;
        writeln!(
            f,
            "  forward declarations: {} classes, {} functions",
            self.classes_forward_declared, self.functions_forward_declared
        )?;
        writeln!(
            f,
            "  wrappers: {} function, {} method/field; {} functors; {} enums replaced",
            self.function_wrappers, self.method_wrappers, self.functors, self.enums_replaced
        )?;
        writeln!(
            f,
            "  explicit instantiations: {}",
            self.explicit_instantiations
        )?;
        writeln!(
            f,
            "  LOC {} -> {} ({:.1}x), headers {} -> {}",
            self.before.loc,
            self.after.loc,
            self.loc_reduction(),
            self.before.headers,
            self.after.headers
        )?;
        writeln!(
            f,
            "  verification: {}",
            if self.verification.passed() {
                "passed"
            } else {
                "FAILED"
            }
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  note: {}", d.message)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_reduction_math() {
        let mut r = Report {
            before: TuStats {
                loc: 111301,
                headers: 581,
            },
            after: TuStats {
                loc: 77,
                headers: 2,
            },
            ..Report::default()
        };
        assert!((r.loc_reduction() - 1445.5).abs() < 1.0);
        r.after.loc = 0;
        assert!(r.loc_reduction().is_infinite());
    }

    #[test]
    fn display_is_informative() {
        let r = Report::default();
        let text = r.to_string();
        assert!(text.contains("forward declarations"));
        assert!(text.contains("verification"));
    }
}
