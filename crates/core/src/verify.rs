//! Post-substitution verification.
//!
//! The paper claims Header Substitution "replaces include statements in
//! source files while guaranteeing that the code still compiles and runs
//! correctly". This module provides that guarantee for the reproduction:
//! after the engine rewrites everything, it
//!
//! 1. re-parses the rewritten sources against the generated lightweight
//!    header (the user-TU compile of Figure 6 step ④),
//! 2. checks the incomplete-type rules over the re-parsed TU (what a real
//!    compiler's semantic analysis would reject),
//! 3. parses the generated wrappers file against the *original* expensive
//!    header (the wrapper compile of Figure 6 step ③).

use std::collections::{BTreeMap, HashSet};

use yalla_analysis::incomplete::check_incomplete_rules;
use yalla_analysis::symbols::{SymbolKind, SymbolTable};
use yalla_cpp::frontend::Frontend;
use yalla_cpp::vfs::Vfs;

use crate::plan::Plan;
use crate::report::Verification;

/// Runs the verification pass.
///
/// `original_vfs` is the pre-substitution file system; `rewritten` maps
/// source paths to their rewritten text; `lightweight` and `wrappers` are
/// the generated artifacts; `main_source` is the TU root.
pub fn verify(
    original_vfs: &Vfs,
    rewritten: &BTreeMap<String, String>,
    lightweight_name: &str,
    lightweight: &str,
    wrappers_name: &str,
    wrappers: &str,
    main_source: &str,
) -> Verification {
    let mut v = Verification::default();

    // --- 1+2: the substituted user TU ----------------------------------
    let mut user_vfs = original_vfs.clone();
    for (path, text) in rewritten {
        user_vfs.add_file(path, text.clone());
    }
    user_vfs.add_file(lightweight_name, lightweight);
    let fe = Frontend::new(user_vfs);
    match fe.parse_translation_unit(main_source) {
        Ok(tu) => {
            v.sources_parse = true;
            // Forward-declared-only classes are the incomplete set.
            let table = SymbolTable::build(&tu.ast);
            let incomplete: HashSet<String> = table
                .iter()
                .filter_map(|s| match &s.kind {
                    SymbolKind::Class(c) if !c.is_definition => Some(s.key.clone()),
                    _ => None,
                })
                .collect();
            v.violations = check_incomplete_rules(&tu.ast, &incomplete, &table);
        }
        Err(_) => {
            v.sources_parse = false;
        }
    }

    // --- 3: the wrappers TU against the real header ----------------------
    let mut wrap_vfs = original_vfs.clone();
    wrap_vfs.add_file(lightweight_name, lightweight);
    wrap_vfs.add_file(wrappers_name, wrappers);
    let fe = Frontend::new(wrap_vfs);
    v.wrappers_parse = fe.parse_translation_unit(wrappers_name).is_ok();

    v
}

/// Convenience: verify directly from a [`Plan`]'s artifacts (used by
/// tests; the engine calls [`verify`]).
pub fn verify_plan_artifacts(
    original_vfs: &Vfs,
    plan: &Plan,
    rewritten: &BTreeMap<String, String>,
    header_name: &str,
    main_source: &str,
) -> Verification {
    let lw = crate::emit::lightweight_header(plan, header_name);
    let wf = crate::emit::wrappers_file(plan, header_name, crate::emit::LIGHTWEIGHT_HEADER_NAME);
    verify(
        original_vfs,
        rewritten,
        crate::emit::LIGHTWEIGHT_HEADER_NAME,
        &lw,
        crate::emit::WRAPPERS_FILE_NAME,
        &wf,
        main_source,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn verify_catches_bad_rewrites() {
        // A "rewrite" that leaves a by-value field of a forward-declared
        // class must fail the incomplete-type check.
        let mut vfs = Vfs::new();
        vfs.add_file(
            "lib.hpp",
            "#pragma once\nnamespace L { class Big { public: int id(); }; }\n",
        );
        vfs.add_file(
            "main.cpp",
            "#include <lib.hpp>\nstruct S { L::Big field; };\n",
        );
        let mut rewritten = BTreeMap::new();
        // Broken output: include swapped but the field not pointerized.
        rewritten.insert(
            "main.cpp".to_string(),
            "#include \"lw.hpp\"\nstruct S { L::Big field; };\n".to_string(),
        );
        let v = verify(
            &vfs,
            &rewritten,
            "lw.hpp",
            "namespace L { class Big; }\n",
            "w.cpp",
            "#include <lib.hpp>\n#include \"lw.hpp\"\n",
            "main.cpp",
        );
        assert!(v.sources_parse);
        assert!(v.wrappers_parse);
        assert!(!v.violations.is_empty(), "by-value field must be flagged");
        assert!(!v.passed());
    }

    #[test]
    fn verify_catches_syntax_errors_in_rewrites() {
        let mut vfs = Vfs::new();
        vfs.add_file("lib.hpp", "#pragma once\nnamespace L { class C; }\n");
        vfs.add_file("main.cpp", "#include <lib.hpp>\nint f();\n");
        let mut rewritten = BTreeMap::new();
        rewritten.insert("main.cpp".to_string(), "int f( {{{".to_string());
        let v = verify(
            &vfs,
            &rewritten,
            "lw.hpp",
            "namespace L { class C; }\n",
            "w.cpp",
            "#include <lib.hpp>\n",
            "main.cpp",
        );
        assert!(!v.sources_parse);
        assert!(!v.passed());
    }

    #[test]
    fn verify_accepts_a_correct_rewrite() {
        let mut vfs = Vfs::new();
        vfs.add_file(
            "lib.hpp",
            "#pragma once\nnamespace L { class Big { public: int id(); }; }\n",
        );
        vfs.add_file(
            "main.cpp",
            "#include <lib.hpp>\nstruct S { L::Big field; };\n",
        );
        let mut rewritten = BTreeMap::new();
        rewritten.insert(
            "main.cpp".to_string(),
            "#include \"lw.hpp\"\nstruct S { L::Big* field; };\n".to_string(),
        );
        let v = verify(
            &vfs,
            &rewritten,
            "lw.hpp",
            "#pragma once\nnamespace L { class Big; }\n",
            "w.cpp",
            "#include <lib.hpp>\n#include \"lw.hpp\"\n",
            "main.cpp",
        );
        assert!(v.passed(), "{v:?}");
    }
}
