//! Feature-level integration tests of the Header Substitution engine: one
//! focused fixture per Table 1 rule and per documented edge case.

use yalla_core::{DiagnosticKind, Engine, Options};
use yalla_cpp::vfs::Vfs;

fn run(header: &str, source: &str) -> yalla_core::SubstitutionResult {
    let mut vfs = Vfs::new();
    vfs.add_file("lib.hpp", format!("#pragma once\n{header}"));
    vfs.add_file("main.cpp", format!("#include <lib.hpp>\n{source}"));
    Engine::new(Options {
        header: "lib.hpp".into(),
        sources: vec!["main.cpp".into()],
        ..Options::default()
    })
    .run(&vfs)
    .expect("engine runs")
}

// ---- Table 1 row 1: class/struct --------------------------------------------

#[test]
fn class_used_by_value_is_pointerized_everywhere() {
    let r = run(
        "namespace L { class Big { public: int go(); }; }",
        "struct Holder { L::Big member; };\nint f() { Holder h; return 0; }",
    );
    assert!(r.report.verification.passed());
    let main = &r.rewritten_sources["main.cpp"];
    assert!(main.contains("L::Big* member;"), "{main}");
}

#[test]
fn class_used_only_by_reference_is_not_pointerized() {
    let r = run(
        "namespace L { class Big { public: int go(); }; }",
        "int f(L::Big& b) { return b.go(); }",
    );
    assert!(r.report.verification.passed());
    let main = &r.rewritten_sources["main.cpp"];
    // Parameter unchanged; method call rewritten.
    assert!(main.contains("L::Big& b"), "{main}");
    assert!(main.contains("go(b)"), "{main}");
    assert!(!r.plan.pointerized_classes.contains("L::Big"));
}

// ---- Table 1 row 2: type alias ------------------------------------------------

#[test]
fn alias_resolution_reaches_the_real_class() {
    let r = run(
        "namespace L { class Real { public: int id() const; }; using Fake = Real; }",
        "int f(L::Fake& x) { return x.id(); }",
    );
    assert!(r.report.verification.passed());
    assert!(
        r.lightweight_header.contains("class Real;"),
        "{}",
        r.lightweight_header
    );
}

// ---- Table 1 row 3: enum --------------------------------------------------------

#[test]
fn enum_type_and_constants_are_replaced() {
    let r = run(
        "namespace L { enum Mode { FAST = 1, SLOW = 4, }; void set_mode(int m); }",
        "int f() { int m = L::Mode::SLOW; L::set_mode(L::FAST); return m; }",
    );
    assert!(r.report.verification.passed());
    let main = &r.rewritten_sources["main.cpp"];
    // Constants replaced by their literal values.
    assert!(main.contains("int m = 4;"), "{main}");
    assert!(main.contains("set_mode(1)"), "{main}");
    assert_eq!(r.report.enums_replaced, 1);
}

#[test]
fn scoped_enum_with_implicit_values() {
    let r = run(
        "namespace L { enum class Color { Red, Green, Blue, }; }",
        "int f() { return static_cast<int>(L::Color::Blue); }",
    );
    let main = &r.rewritten_sources["main.cpp"];
    // Red=0, Green=1, Blue=2.
    assert!(main.contains("2"), "{main}");
}

// ---- Table 1 row 4: functions -----------------------------------------------------

#[test]
fn plain_function_is_forward_declared_not_wrapped() {
    let r = run(
        "namespace L { int add(int a, int b); }",
        "int f() { return L::add(1, 2); }",
    );
    assert!(r.report.verification.passed());
    assert_eq!(r.report.function_wrappers, 0);
    assert_eq!(r.report.functions_forward_declared, 1);
    // Call site untouched.
    assert!(r.rewritten_sources["main.cpp"].contains("L::add(1, 2)"));
}

#[test]
fn incomplete_return_gets_wrapper_with_heap_allocation() {
    let r = run(
        "namespace L { struct Fat { int buf[64]; }; Fat make(); int weigh(Fat f); }",
        "int f() { return L::weigh(L::make()); }",
    );
    assert!(
        r.report.verification.passed(),
        "{:?}",
        r.report.verification
    );
    assert_eq!(r.report.function_wrappers, 2);
    let wf = &r.wrappers_file;
    assert!(wf.contains("return new L::Fat("), "{wf}");
    let main = &r.rewritten_sources["main.cpp"];
    assert!(main.contains("weigh_w(make_w())"), "{main}");
}

#[test]
fn explicit_template_args_survive_and_instantiate() {
    let r = run(
        "namespace L { struct Box { int v; }; template <typename T> Box wrap(T value); }",
        "int f() { L::wrap<int>(3); L::wrap<double>(2.5); return 0; }",
    );
    assert!(r.report.verification.passed());
    let wf = &r.wrappers_file;
    assert!(wf.contains("template L::Box* wrap_w<int>(int);"), "{wf}");
    assert!(
        wf.contains("template L::Box* wrap_w<double>(double);"),
        "{wf}"
    );
    let main = &r.rewritten_sources["main.cpp"];
    assert!(main.contains("wrap_w<int>(3)"), "{main}");
}

// ---- Table 1 row 5: methods & fields ------------------------------------------------

#[test]
fn field_access_goes_through_accessor_wrapper() {
    let r = run(
        "namespace L { class Conf { public: int verbosity; }; }",
        "int f(L::Conf& c) { return c.verbosity + 1; }",
    );
    assert!(r.report.verification.passed());
    let main = &r.rewritten_sources["main.cpp"];
    assert!(main.contains("yalla_get_verbosity(c)"), "{main}");
    let wf = &r.wrappers_file;
    assert!(wf.contains(".verbosity;"), "{wf}");
}

#[test]
fn method_wrappers_are_instantiated_per_receiver_type() {
    let r = run(
        "namespace L { template <typename T> class Vec { public: int size() const; }; }",
        "int f(L::Vec<int>& a, L::Vec<double>& b) { return a.size() + b.size(); }",
    );
    assert!(r.report.verification.passed());
    let wf = &r.wrappers_file;
    assert!(wf.contains("size<L::Vec<int>>"), "{wf}");
    assert!(wf.contains("size<L::Vec<double>>"), "{wf}");
}

#[test]
fn colliding_method_names_across_classes_are_renamed() {
    let r = run(
        "namespace L { class A { public: int poke(); }; class B { public: int poke(); }; }",
        "int f(L::A& a, L::B& b) { return a.poke() + b.poke(); }",
    );
    assert!(r.report.verification.passed());
    let names: Vec<&str> = r
        .plan
        .method_wrappers
        .iter()
        .map(|w| w.wrapper_name.as_str())
        .collect();
    assert_eq!(names.len(), 2);
    assert_ne!(
        names[0], names[1],
        "wrapper names must not collide: {names:?}"
    );
}

// ---- Table 1 row 6: lambdas ------------------------------------------------------------

#[test]
fn lambda_not_passed_to_library_is_untouched() {
    let r = run(
        "namespace L { class C { public: int id() const; }; }",
        "int f(L::C& c) { auto g = [&](int i) { return i + c.id(); }; return g(1); }",
    );
    // The lambda stays a lambda (no functor generated for local-only use).
    assert_eq!(r.report.functors, 0);
}

#[test]
fn lambda_passed_to_wrapped_template_becomes_functor() {
    let r = run(
        "namespace L { struct R { int n; }; R range(int n); template <typename X, typename F> void apply(X x, F f); }",
        "void f() { int acc = 0; L::apply(L::range(3), [&](int i) { acc += i; }); }",
    );
    assert!(
        r.report.verification.passed(),
        "{:?}",
        r.report.verification
    );
    assert_eq!(r.report.functors, 1);
    let lw = &r.lightweight_header;
    // Mutated capture -> pointer field + const operator().
    assert!(lw.contains("int* acc;"), "{lw}");
    assert!(lw.contains("(*acc) += i;"), "{lw}");
    let main = &r.rewritten_sources["main.cpp"];
    assert!(main.contains("yalla_functor_0{&acc}"), "{main}");
}

// ---- documented edge cases ------------------------------------------------------------

#[test]
fn nested_class_yields_structured_diagnostic() {
    let r = run(
        "namespace L { class Outer { public: class Inner { public: int v(); }; Inner get(); }; }",
        "int f(L::Outer& o) { return 0; }",
    );
    // Inner cannot be forward declared (§3.2.1): diagnostic, not a panic.
    let has_diag = r
        .plan
        .diagnostics
        .iter()
        .any(|d| d.kind == DiagnosticKind::NestedClassUnsupported);
    // (Only fires when Inner is actually pulled into the plan, i.e. via
    // get()'s signature. Either way the engine must not fail.)
    let _ = has_diag;
    assert!(r.report.verification.sources_parse);
}

#[test]
fn unused_header_is_dropped_with_note() {
    let r = run(
        "namespace L { class Unused { public: int x(); }; }",
        "int standalone() { return 42; }",
    );
    assert!(r
        .plan
        .diagnostics
        .iter()
        .any(|d| d.message.contains("nothing")));
    // Include swapped for an (empty) lightweight header; still verifies.
    assert!(r.report.verification.passed());
    assert!(r.rewritten_sources["main.cpp"].contains("yalla_lightweight.hpp"));
}

#[test]
fn using_declaration_of_target_class_counts_as_use() {
    let r = run(
        "namespace L { class Widget { public: int id(); }; }",
        "using L::Widget;\nint f(Widget& w) { return w.id(); }",
    );
    assert!(r.report.verification.passed());
    assert!(r.lightweight_header.contains("class Widget;"));
}

#[test]
fn sources_keep_unrelated_includes() {
    let mut vfs = Vfs::new();
    vfs.add_file(
        "lib.hpp",
        "#pragma once\nnamespace L { class C { public: int id(); }; }",
    );
    vfs.add_file(
        "other.hpp",
        "#pragma once\ninline int helper(int v) { return v; }\n",
    );
    vfs.add_file(
        "main.cpp",
        "#include <lib.hpp>\n#include <other.hpp>\nint f(L::C& c) { return helper(c.id()); }\n",
    );
    let r = Engine::new(Options {
        header: "lib.hpp".into(),
        sources: vec!["main.cpp".into()],
        ..Options::default()
    })
    .run(&vfs)
    .expect("engine runs");
    let main = &r.rewritten_sources["main.cpp"];
    assert!(main.contains("#include <other.hpp>"), "{main}");
    assert!(!main.contains("#include <lib.hpp>"), "{main}");
}

#[test]
fn defines_flow_into_the_engine() {
    let mut vfs = Vfs::new();
    vfs.add_file(
        "lib.hpp",
        "#pragma once\n#if FANCY\nnamespace L { class C { public: int id(); }; }\n#else\nnamespace L { class D { public: int id(); }; }\n#endif\n",
    );
    vfs.add_file(
        "main.cpp",
        "#include <lib.hpp>\nint f(L::C& c) { return c.id(); }\n",
    );
    let r = Engine::new(Options {
        header: "lib.hpp".into(),
        sources: vec!["main.cpp".into()],
        defines: vec![("FANCY".into(), "1".into())],
        ..Options::default()
    })
    .run(&vfs)
    .expect("engine runs");
    assert!(r.lightweight_header.contains("class C;"));
}

#[test]
fn report_counts_are_consistent_with_plan() {
    let r = run(
        "namespace L { class A { public: int m(); }; struct Fat { int b[9]; }; Fat make(); enum E { X, }; }",
        "int f(L::A& a) { L::make(); int e = L::E::X; return a.m() + e; }",
    );
    assert_eq!(r.report.classes_forward_declared, r.plan.classes.len());
    assert_eq!(r.report.function_wrappers, r.plan.fn_wrappers.len());
    assert_eq!(r.report.method_wrappers, r.plan.method_wrappers.len());
    assert_eq!(r.report.enums_replaced, r.plan.enums.len());
}
