//! Deterministic filler-code generation.
//!
//! Library bulk is generated, not hand-written: a [`LibSpec`] describes
//! how many internal headers a library has and what mix of constructs
//! they contain, and [`generate_library`] emits parseable C++ into a
//! [`Vfs`]. The mix matters for the simulator: template bodies cost the
//! frontend only (they are never instantiated by the subjects), while
//! `inline` functions with concrete bodies reach the backend — that ratio
//! is what makes PCH strong on some libraries and weak on others
//! (paper Figure 7).

use yalla_cpp::vfs::Vfs;

/// Shape of a generated library.
#[derive(Debug, Clone)]
pub struct LibSpec {
    /// Short prefix used in generated names (`kk`, `rj`, ...).
    pub prefix: &'static str,
    /// Namespace wrapping all generated code.
    pub namespace: &'static str,
    /// Directory the headers live in.
    pub dir: &'static str,
    /// The umbrella header's file name (within `dir`'s parent).
    pub top_header: &'static str,
    /// Number of internal headers.
    pub internal_headers: usize,
    /// Approximate lines per internal header.
    pub lines_per_header: usize,
    /// Of the generated function bodies, how many out of 100 are
    /// *concrete inline* (backend cost) rather than templates
    /// (frontend-only).
    pub concrete_percent: usize,
    /// Extra hand-written API text appended to the umbrella header.
    pub api: String,
}

/// Simple deterministic PRNG (xorshift) so generation never depends on
/// external entropy and stays reproducible.
#[derive(Debug, Clone)]
pub struct DetRng(u64);

impl DetRng {
    /// Seeds the generator. Zero is a fixed point of xorshift (it would
    /// produce a constant all-zero stream), so seed 0 is remapped to a
    /// fixed odd constant distinct from every small seed; all nonzero
    /// seeds keep their historical streams.
    pub fn new(seed: u64) -> Self {
        if seed == 0 {
            DetRng(0x9E37_79B9_7F4A_7C15)
        } else {
            DetRng(seed)
        }
    }

    /// Next value in `0..bound`.
    pub fn next(&mut self, bound: usize) -> usize {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x % bound.max(1) as u64) as usize
    }

    /// Next raw 64-bit state draw (full-width, for seeding sub-streams).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Generates the library described by `spec` into `vfs` and returns the
/// path of its umbrella header.
pub fn generate_library(vfs: &mut Vfs, spec: &LibSpec) -> String {
    let mut rng = DetRng::new(spec.prefix.bytes().fold(0xdead_beefu64, |a, b| {
        a.wrapping_mul(31).wrapping_add(b as u64)
    }));
    let mut top = String::new();
    top.push_str("#pragma once\n");
    for i in 0..spec.internal_headers {
        let path = format!("{}/detail_{i:04}.hpp", spec.dir);
        vfs.add_file(&path, internal_header(spec, i, &mut rng));
        top.push_str(&format!("#include <{path}>\n"));
    }
    top.push_str(&format!("namespace {} {{\n", spec.namespace));
    top.push_str(&spec.api);
    top.push_str(&format!("\n}} // namespace {}\n", spec.namespace));
    vfs.add_file(spec.top_header, top);
    spec.top_header.to_string()
}

fn internal_header(spec: &LibSpec, index: usize, rng: &mut DetRng) -> String {
    let mut out = String::with_capacity(spec.lines_per_header * 40);
    out.push_str("#pragma once\n");
    out.push_str(&format!(
        "namespace {} {{ namespace detail {{\n",
        spec.namespace
    ));
    let mut line_budget = spec.lines_per_header;
    let mut item = 0usize;
    while line_budget > 8 {
        let tag = format!("{}_{index:04}_{item}", spec.prefix);
        let concrete = rng.next(100) < spec.concrete_percent;
        let body_lines = 3 + rng.next(5);
        let chunk = match rng.next(3) {
            // A function (template or concrete inline).
            0 | 1 => {
                let mut f = String::new();
                if concrete {
                    f.push_str(&format!("inline int fn_{tag}(int v, int k) {{\n"));
                } else {
                    f.push_str(&format!(
                        "template <typename T{item}>\ninline T{item} fn_{tag}(T{item} v, int k) {{\n"
                    ));
                }
                f.push_str(&format!("  int acc = k + {item};\n"));
                for b in 0..body_lines {
                    f.push_str(&format!("  acc = acc * {} + {b};\n", b + 2));
                }
                if concrete {
                    f.push_str("  return acc;\n}\n");
                } else {
                    f.push_str("  return v;\n}\n");
                }
                f
            }
            // A class with method declarations and an inline method.
            _ => {
                let mut c = String::new();
                c.push_str(&format!(
                    "template <typename P{item}>\nclass Cls_{tag} {{\npublic:\n"
                ));
                c.push_str(&format!("  Cls_{tag}();\n"));
                for m in 0..(2 + rng.next(3)) {
                    c.push_str(&format!("  int method_{m}(int a, double b) const;\n"));
                }
                c.push_str(&format!(
                    "  int size_{item};\nprivate:\n  int cap_{item};\n}};\n"
                ));
                c
            }
        };
        line_budget = line_budget.saturating_sub(chunk.lines().count());
        out.push_str(&chunk);
        item += 1;
    }
    out.push_str("} }\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use yalla_cpp::frontend::Frontend;

    fn spec() -> LibSpec {
        LibSpec {
            prefix: "tst",
            namespace: "tst",
            dir: "tst/include",
            top_header: "tst.hpp",
            internal_headers: 12,
            lines_per_header: 120,
            concrete_percent: 10,
            api: "class Widget { public: int id() const; };\n".into(),
        }
    }

    #[test]
    fn generated_library_parses() {
        let mut vfs = Vfs::new();
        let top = generate_library(&mut vfs, &spec());
        vfs.add_file(
            "probe.cpp",
            format!("#include <{top}>\nint main() {{ return 0; }}\n"),
        );
        let fe = Frontend::new(vfs);
        let tu = fe.parse_translation_unit("probe.cpp").unwrap();
        assert_eq!(tu.stats.header_count(), 13); // umbrella + 12 internals
        assert!(tu.stats.lines_compiled > 1000);
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = Vfs::new();
        let mut b = Vfs::new();
        generate_library(&mut a, &spec());
        generate_library(&mut b, &spec());
        let ida = a.lookup("tst/include/detail_0003.hpp").unwrap();
        let idb = b.lookup("tst/include/detail_0003.hpp").unwrap();
        assert_eq!(a.text(ida), b.text(idb));
    }

    #[test]
    fn concrete_percent_controls_backend_weight() {
        let mut heavy_spec = spec();
        heavy_spec.concrete_percent = 90;
        let mut light = Vfs::new();
        let mut heavy = Vfs::new();
        let t1 = generate_library(&mut light, &spec());
        let t2 = generate_library(&mut heavy, &heavy_spec);
        light.add_file("p.cpp", format!("#include <{t1}>\n"));
        heavy.add_file("p.cpp", format!("#include <{t2}>\n"));
        let wl = yalla_sim::measure_tu(&light, "p.cpp", &[]).unwrap();
        let wh = yalla_sim::measure_tu(&heavy, "p.cpp", &[]).unwrap();
        assert!(
            wh.concrete_body_stmts > wl.concrete_body_stmts * 3,
            "heavy {} vs light {}",
            wh.concrete_body_stmts,
            wl.concrete_body_stmts
        );
    }

    #[test]
    fn det_rng_is_stable() {
        let mut r1 = DetRng::new(42);
        let mut r2 = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(r1.next(1000), r2.next(1000));
        }
    }

    #[test]
    fn det_rng_zero_seed_is_not_degenerate() {
        // xorshift(0) == 0: an unmapped zero seed would emit a constant
        // stream. The constructor must remap it to a productive state.
        let mut r = DetRng::new(0);
        let draws: Vec<usize> = (0..64).map(|_| r.next(1_000_000)).collect();
        assert!(
            draws.iter().any(|&d| d != draws[0]),
            "zero seed produced a constant stream: {draws:?}"
        );
        // And it must be a *distinct* stream from every small nonzero
        // seed (the old `seed.max(1)` made seeds 0 and 1 collide).
        let mut r0 = DetRng::new(0);
        let mut r1 = DetRng::new(1);
        let s0: Vec<usize> = (0..64).map(|_| r0.next(1_000_000)).collect();
        let s1: Vec<usize> = (0..64).map(|_| r1.next(1_000_000)).collect();
        assert_ne!(s0, s1, "seeds 0 and 1 must not share a stream");
    }

    #[test]
    fn det_rng_has_no_short_cycles_over_10k_draws() {
        // xorshift64 permutes nonzero states with period 2^64 - 1, so no
        // state may repeat this early. Check the raw state stream for a
        // spread of seeds, including the remapped zero seed.
        for seed in [0u64, 1, 2, 42, 0xdead_beef, u64::MAX] {
            let mut r = DetRng::new(seed);
            let mut seen = std::collections::HashSet::with_capacity(10_001);
            for i in 0..10_000u64 {
                assert!(
                    seen.insert(r.next_u64()),
                    "seed {seed}: state repeated after {i} draws"
                );
            }
        }
    }

    #[test]
    fn det_rng_bounded_draws_cover_their_range() {
        // Stream-quality smoke: over 10k draws from 0..16 every bucket
        // must be hit, and no bucket may absorb more than half the mass.
        let mut r = DetRng::new(7);
        let mut counts = [0usize; 16];
        for _ in 0..10_000 {
            counts[r.next(16)] += 1;
        }
        for (bucket, &n) in counts.iter().enumerate() {
            assert!(n > 0, "bucket {bucket} never drawn");
            assert!(n < 5_000, "bucket {bucket} drawn {n} times out of 10k");
        }
    }
}
