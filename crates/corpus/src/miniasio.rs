//! The mini-Boost.Asio library.
//!
//! Reproduces Boost.Asio's signature pathology: an enormous header-only
//! tree (the paper's `chat_server` pulls **2114** headers and ~171k
//! lines) of which a chat server uses a tiny asynchronous-IO surface —
//! YALLA's best non-Kokkos case (9.5×), while PCH barely helps (1.4×)
//! because the template-and-inline bulk still reaches instantiation and
//! the backend.

use yalla_cpp::vfs::Vfs;

use crate::gen::{generate_library, LibSpec};

/// The substituted header.
pub const TOP_HEADER: &str = "boost/asio.hpp";
/// Auxiliary boost headers the subject keeps (not substituted).
pub const BOOST_AUX: &str = "boost/aux.hpp";

fn api() -> String {
    r#"
class error_code {
public:
  error_code();
  int value() const;
  bool failed() const;
};
class io_context {
public:
  io_context();
  int run();
  void stop();
  bool stopped() const;
};
class tcp_endpoint {
public:
  tcp_endpoint(int port0);
  int port;
};
class tcp_socket {
public:
  tcp_socket(io_context& ctx);
  bool is_open() const;
  void close();
  int available() const;
};
class tcp_acceptor {
public:
  tcp_acceptor(io_context& ctx, tcp_endpoint& ep);
};
class mutable_buffer {
public:
  mutable_buffer(char* data, int n);
  int size() const;
};
mutable_buffer buffer(char* data, int n);
template <typename Handler>
void async_read(tcp_socket& socket, mutable_buffer& buf, Handler handler);
template <typename Handler>
void async_write(tcp_socket& socket, mutable_buffer& buf, Handler handler);
template <typename Handler>
void async_accept(tcp_acceptor& acceptor, Handler handler);
template <typename Handler>
void post(io_context& ctx, Handler handler);
"#
    .to_string()
}

/// Installs the asio + aux trees; returns the asio header path.
pub fn install(vfs: &mut Vfs) -> String {
    generate_library(
        vfs,
        &LibSpec {
            prefix: "as",
            namespace: "asio",
            dir: "boost/asio",
            top_header: TOP_HEADER,
            internal_headers: 1870,
            lines_per_header: 66,
            concrete_percent: 42,
            api: api(),
        },
    );
    generate_library(
        vfs,
        &LibSpec {
            prefix: "bx",
            namespace: "boost",
            dir: "boost/aux",
            top_header: BOOST_AUX,
            internal_headers: 50,
            lines_per_header: 420,
            concrete_percent: 40,
            api: r#"
class shared_count {
public:
  shared_count();
  int use_count() const;
};
template <typename T>
class shared_ptr {
public:
  shared_ptr();
  T* get() const;
  int use_count() const;
};
"#
            .to_string(),
        },
    );
    TOP_HEADER.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use yalla_cpp::frontend::Frontend;

    #[test]
    fn chat_server_scale() {
        let mut vfs = Vfs::new();
        install(&mut vfs);
        crate::ministd::install(&mut vfs);
        vfs.add_file(
            "probe.cpp",
            format!(
                "#include <{TOP_HEADER}>\n#include <{BOOST_AUX}>\n#include <{}>\n#include <{}>\n#include <{}>\n",
                crate::ministd::STD_IO,
                crate::ministd::STD_CONTAINERS,
                crate::ministd::STD_ALGORITHM
            ),
        );
        let fe = Frontend::new(vfs);
        let tu = fe.parse_translation_unit("probe.cpp").unwrap();
        // Paper: 170936 lines / 2114 headers for chat_server.
        assert!(
            (140_000..200_000).contains(&tu.stats.lines_compiled),
            "lines = {}",
            tu.stats.lines_compiled
        );
        assert!(
            (2_050..2_200).contains(&tu.stats.header_count()),
            "headers = {}",
            tu.stats.header_count()
        );
    }
}
