//! The mini-OpenCV library.
//!
//! Unlike Kokkos and RapidJSON, OpenCV subjects include *several* module
//! headers and only the core one gets substituted — the reason the paper's
//! OpenCV speedups are modest (1.9–5.6×) and PCH (which can precompile
//! all of the modules at once) sometimes wins (`laplace`).

use yalla_cpp::vfs::Vfs;

use crate::gen::{generate_library, LibSpec};

/// The substituted header (core module).
pub const CORE: &str = "opencv2/core.hpp";
/// The image-processing module (kept by YALLA, covered by PCH).
pub const IMGPROC: &str = "opencv2/imgproc.hpp";
/// The calibration module.
pub const CALIB3D: &str = "opencv2/calib3d.hpp";
/// The GUI/IO module.
pub const HIGHGUI: &str = "opencv2/highgui.hpp";

fn core_api() -> String {
    r#"
enum LineTypes {
  FILLED = -1,
  LINE_4 = 4,
  LINE_8 = 8,
  LINE_AA = 16,
};
class Size {
public:
  Size(int w, int h);
  int width;
  int height;
};
class Point {
public:
  Point(int x0, int y0);
  int x;
  int y;
};
class Scalar {
public:
  Scalar(double b, double g, double r);
  double v0;
  double v1;
  double v2;
};
class Mat {
public:
  Mat();
  Mat(int rows0, int cols0);
  double& at(int r, int c);
  Mat clone() const;
  int total() const;
  int rows;
  int cols;
};
Mat imread(const char* path);
void imwrite(const char* path, Mat& img);
template <typename Op>
void forEachPixel(Mat& img, Op op);
"#
    .to_string()
}

/// Installs all four module trees; returns the core header path.
pub fn install(vfs: &mut Vfs) -> String {
    generate_library(
        vfs,
        &LibSpec {
            prefix: "cvc",
            namespace: "cv",
            dir: "opencv2/core",
            top_header: CORE,
            internal_headers: 150,
            lines_per_header: 320,
            concrete_percent: 7,
            api: core_api(),
        },
    );
    generate_library(
        vfs,
        &LibSpec {
            prefix: "cvi",
            namespace: "cv",
            dir: "opencv2/imgproc",
            top_header: IMGPROC,
            internal_headers: 75,
            lines_per_header: 210,
            concrete_percent: 7,
            api: r#"
void GaussianBlur(Mat& src, Mat& dst, Size& ksize, double sigma);
void Laplacian(Mat& src, Mat& dst, int ddepth);
void line(Mat& img, Point& p1, Point& p2, Scalar& color, int thickness);
void circle(Mat& img, Point& center, int radius, Scalar& color);
void ellipse(Mat& img, Point& center, Size& axes, double angle, Scalar& color);
"#
            .to_string(),
        },
    );
    generate_library(
        vfs,
        &LibSpec {
            prefix: "cvk",
            namespace: "cv",
            dir: "opencv2/calib3d",
            top_header: CALIB3D,
            internal_headers: 55,
            lines_per_header: 215,
            concrete_percent: 7,
            api: r#"
double calibrateCamera(Mat& object_points, Mat& image_points, Size& size, Mat& camera, Mat& dist);
void undistort(Mat& src, Mat& dst, Mat& camera, Mat& dist);
void stereoRectify(Mat& c1, Mat& c2, Mat& r, Mat& t);
"#
            .to_string(),
        },
    );
    generate_library(
        vfs,
        &LibSpec {
            prefix: "cvh",
            namespace: "cv",
            dir: "opencv2/highgui",
            top_header: HIGHGUI,
            internal_headers: 35,
            lines_per_header: 200,
            concrete_percent: 7,
            api: r#"
void imshow(const char* window, Mat& img);
int waitKey(int delay);
void namedWindow(const char* name);
"#
            .to_string(),
        },
    );
    CORE.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use yalla_cpp::frontend::Frontend;

    #[test]
    fn module_scales() {
        let mut vfs = Vfs::new();
        install(&mut vfs);
        vfs.add_file(
            "probe.cpp",
            format!("#include <{CORE}>\n#include <{IMGPROC}>\n#include <{CALIB3D}>\n#include <{HIGHGUI}>\n"),
        );
        let fe = Frontend::new(vfs);
        let tu = fe.parse_translation_unit("probe.cpp").unwrap();
        // Roughly the paper's 3calibration scale (~82k lines, ~351 headers).
        assert!(
            (60_000..100_000).contains(&tu.stats.lines_compiled),
            "lines = {}",
            tu.stats.lines_compiled
        );
        assert!(
            (300..360).contains(&tu.stats.header_count()),
            "{}",
            tu.stats.header_count()
        );
    }
}
