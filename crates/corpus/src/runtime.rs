//! Native runtimes for the abstract machine.
//!
//! Each library's behaviour (views, documents, images, sockets) is
//! provided as [`yalla_sim::ir::Machine`] natives. The natives always run
//! "inside the library", so they invoke user callbacks from a dedicated
//! [`RUNTIME_TU`] — meaning the *callback invocation* costs the same under
//! every build configuration, and run-time differences come only from the
//! code YALLA actually rewrote (wrapper calls crossing into the wrappers
//! TU), which is the effect §5.4 and Figure 9 describe.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use yalla_sim::ir::{ExecError, Machine, TuId, Value};

use crate::RuntimeKind;

/// The TU natives "live in" when they call back into user code.
pub const RUNTIME_TU: TuId = 99;

/// Installs the natives for `kind` into `machine`.
pub fn install(machine: &mut Machine, kind: RuntimeKind) {
    match kind {
        RuntimeKind::Kokkos => install_kokkos(machine),
        RuntimeKind::Json => install_json(machine),
        RuntimeKind::Cv => install_cv(machine),
        RuntimeKind::Asio => install_asio(machine),
    }
}

fn obj(class: &str, fields: &[(&str, Value)]) -> Value {
    Value::Obj {
        class: class.into(),
        fields: Rc::new(RefCell::new(
            fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect::<HashMap<_, _>>(),
        )),
    }
}

fn array2(rows: i64, cols: i64) -> Value {
    Value::Array2 {
        data: Rc::new(RefCell::new(vec![0.0; (rows * cols).max(1) as usize])),
        cols: cols.max(1) as usize,
    }
}

fn arg_i(args: &[Value], i: usize) -> i64 {
    args.get(i).and_then(Value::as_i64).unwrap_or(0)
}

fn install_kokkos(m: &mut Machine) {
    m.register_native("ctor::View", |_m, args| {
        let n0 = arg_i(&args, 0).max(1);
        let n1 = if args.len() > 1 {
            arg_i(&args, 1).max(1)
        } else {
            1
        };
        Ok(array2(n0, n1))
    });
    m.register_native("ctor::TeamPolicy", |_m, args| {
        Ok(obj(
            "__policy",
            &[
                ("league", Value::Int(arg_i(&args, 0))),
                ("team", Value::Int(arg_i(&args, 1).max(1))),
            ],
        ))
    });
    m.register_native("Kokkos::TeamThreadRange", |_m, args| {
        Ok(Value::Range {
            lo: 0,
            hi: arg_i(&args, 1),
        })
    });
    m.register_native("Kokkos::parallel_for", |m, mut args| {
        if args.len() < 2 {
            return Err(ExecError {
                message: "parallel_for needs (range, functor)".into(),
            });
        }
        let f = args.pop().expect("checked length");
        let range = args.pop().expect("checked length");
        match range {
            Value::Int(n) => {
                for i in 0..n {
                    m.call_value(&f, vec![Value::Int(i)], RUNTIME_TU)?;
                }
            }
            Value::Range { lo, hi } => {
                for i in lo..hi {
                    m.call_value(&f, vec![Value::Int(i)], RUNTIME_TU)?;
                }
            }
            Value::Obj { class, fields } if class == "__policy" => {
                let league = fields
                    .borrow()
                    .get("league")
                    .and_then(Value::as_i64)
                    .unwrap_or(0);
                let team = fields
                    .borrow()
                    .get("team")
                    .and_then(Value::as_i64)
                    .unwrap_or(1);
                for j in 0..league {
                    let member = obj(
                        "__member",
                        &[("rank", Value::Int(j)), ("team", Value::Int(team))],
                    );
                    m.call_value(&f, vec![member], RUNTIME_TU)?;
                }
            }
            other => {
                return Err(ExecError {
                    message: format!("parallel_for over {other:?}"),
                })
            }
        }
        Ok(Value::Unit)
    });
    m.register_native("Kokkos::single", |m, args| {
        if let Some(f) = args.first() {
            m.call_value(f, vec![], RUNTIME_TU)?;
        }
        Ok(Value::Unit)
    });
    for trivial in ["Kokkos::initialize", "Kokkos::finalize", "Kokkos::fence"] {
        m.register_native(trivial, |_m, _a| Ok(Value::Unit));
    }
    m.register_native("Kokkos::device_id", |_m, _a| Ok(Value::Int(0)));
    m.set_method_dispatcher(|_m, recv, method, args| match (recv, method) {
        (Value::Obj { fields, .. }, "league_rank" | "team_rank") => Some(Ok(fields
            .borrow()
            .get("rank")
            .cloned()
            .unwrap_or(Value::Int(0)))),
        (Value::Obj { fields, .. }, "team_size" | "league_size") => Some(Ok(fields
            .borrow()
            .get("team")
            .cloned()
            .unwrap_or(Value::Int(1)))),
        (Value::Array2 { data, cols }, "extent") => {
            let d = args.first().and_then(Value::as_i64).unwrap_or(0);
            let rows = (data.borrow().len() / cols.max(&1)) as i64;
            Some(Ok(Value::Int(if d == 0 { rows } else { *cols as i64 })))
        }
        (Value::Array2 { data, .. }, "span") => Some(Ok(Value::Int(data.borrow().len() as i64))),
        (Value::Array2 { .. }, "rank") => Some(Ok(Value::Int(2))),
        _ => None,
    });
}

fn install_json(m: &mut Machine) {
    m.register_native("ctor::Document", |_m, _a| {
        Ok(obj("__doc", &[("members", Value::Int(0))]))
    });
    m.register_native("ctor::StringBuffer", |_m, _a| {
        Ok(obj("__buf", &[("size", Value::Int(0))]))
    });
    m.register_native("ctor::Writer", |_m, _a| {
        Ok(obj("__writer", &[("events", Value::Int(0))]))
    });
    m.register_native("rapidjson::MakeBuffer", |_m, _a| {
        Ok(obj("__buf", &[("size", Value::Int(0))]))
    });
    m.set_method_dispatcher(|m, recv, method, args| {
        let Value::Obj { fields, .. } = recv else {
            return None;
        };
        let charge = |m: &mut Machine, c: u64| {
            m.cycles += c;
        };
        match method {
            "Parse" => {
                let len = match args.first() {
                    Some(Value::Str(s)) => s.len() as i64,
                    _ => 16,
                };
                charge(m, 40 + 4 * len as u64);
                fields
                    .borrow_mut()
                    .insert("members".into(), Value::Int(len / 4 + 1));
                Some(Ok(Value::Unit))
            }
            "HasParseError" => Some(Ok(Value::Bool(false))),
            "MemberCount" | "Size" => Some(Ok(fields
                .borrow()
                .get("members")
                .cloned()
                .unwrap_or(Value::Int(4)))),
            "GetRoot" => Some(Ok(obj("__val", &[("members", Value::Int(4))]))),
            "IsObject" | "IsArray" | "IsNumber" => Some(Ok(Value::Bool(true))),
            "GetDouble" => Some(Ok(Value::Float(1.5))),
            "GetString" | "c_str" => Some(Ok(Value::Str("x".into()))),
            "GetSize" => Some(Ok(fields
                .borrow()
                .get("size")
                .cloned()
                .unwrap_or(Value::Int(0)))),
            "Clear" => {
                fields.borrow_mut().insert("size".into(), Value::Int(0));
                Some(Ok(Value::Unit))
            }
            "StartObject" | "EndObject" | "Key" | "Int" | "Double" => {
                charge(m, 6);
                let n = fields
                    .borrow()
                    .get("events")
                    .and_then(Value::as_i64)
                    .unwrap_or(0);
                fields
                    .borrow_mut()
                    .insert("events".into(), Value::Int(n + 1));
                Some(Ok(Value::Bool(true)))
            }
            "size" => Some(Ok(Value::Int(8))),
            _ => None,
        }
    });
}

fn install_cv(m: &mut Machine) {
    m.register_native("ctor::Mat", |_m, args| {
        let r = arg_i(&args, 0).max(1);
        let c = arg_i(&args, 1).max(1);
        Ok(array2(r, c))
    });
    for ctor in ["ctor::Point", "ctor::Size"] {
        m.register_native(ctor, |_m, args| {
            Ok(obj(
                "__pt",
                &[
                    ("x", Value::Int(arg_i(&args, 0))),
                    ("y", Value::Int(arg_i(&args, 1))),
                ],
            ))
        });
    }
    m.register_native("ctor::Scalar", |_m, args| {
        Ok(obj(
            "__scalar",
            &[("v0", args.first().cloned().unwrap_or(Value::Float(0.0)))],
        ))
    });
    m.register_native("cv::imread", |_m, _a| Ok(array2(64, 64)));
    m.register_native("cv::imwrite", |m, _a| {
        m.cycles += 200;
        Ok(Value::Unit)
    });
    for filter in ["cv::GaussianBlur", "cv::Laplacian", "cv::undistort"] {
        m.register_native(filter, |m, args| {
            if let Some(Value::Array2 { data, .. }) = args.first() {
                m.cycles += 3 * data.borrow().len() as u64;
            }
            Ok(Value::Unit)
        });
    }
    for draw in ["cv::line", "cv::circle", "cv::ellipse"] {
        m.register_native(draw, |m, _args| {
            m.cycles += 120;
            Ok(Value::Unit)
        });
    }
    m.register_native("cv::calibrateCamera", |m, _args| {
        m.cycles += 5_000;
        Ok(Value::Float(0.42))
    });
    m.register_native("cv::stereoRectify", |m, _args| {
        m.cycles += 2_500;
        Ok(Value::Unit)
    });
    m.register_native("cv::forEachPixel", |m, args| {
        let (img, op) = match (args.first(), args.get(1)) {
            (Some(i), Some(o)) => (i.clone(), o.clone()),
            _ => {
                return Err(ExecError {
                    message: "forEachPixel needs (img, op)".into(),
                })
            }
        };
        if let Value::Array2 { data, cols } = &img {
            let rows = data.borrow().len() / cols.max(&1);
            for r in 0..rows {
                for c in 0..*cols {
                    op_call(m, &op, r as i64, c as i64)?;
                }
            }
        }
        Ok(Value::Unit)
    });
    m.register_native("cv::imshow", |_m, _a| Ok(Value::Unit));
    m.register_native("cv::waitKey", |_m, _a| Ok(Value::Int(-1)));
    m.register_native("cv::namedWindow", |_m, _a| Ok(Value::Unit));
    m.set_method_dispatcher(|_m, recv, method, args| match (recv, method) {
        (Value::Array2 { data, cols }, "at") => {
            let r = args.first().and_then(Value::as_i64).unwrap_or(0) as usize;
            let c = args.get(1).and_then(Value::as_i64).unwrap_or(0) as usize;
            let idx = r * cols + c;
            Some(Ok(Value::Float(
                data.borrow().get(idx).copied().unwrap_or(0.0),
            )))
        }
        (Value::Array2 { data, cols }, "rows") => {
            Some(Ok(Value::Int((data.borrow().len() / cols.max(&1)) as i64)))
        }
        (Value::Array2 { cols, .. }, "cols") => Some(Ok(Value::Int(*cols as i64))),
        (Value::Array2 { data, .. }, "total") => Some(Ok(Value::Int(data.borrow().len() as i64))),
        (Value::Array2 { data, cols }, "clone") => {
            let copy = data.borrow().clone();
            Some(Ok(Value::Array2 {
                data: Rc::new(RefCell::new(copy)),
                cols: *cols,
            }))
        }
        (Value::Obj { fields, .. }, f @ ("x" | "y" | "width" | "height" | "v0")) => {
            let key = match f {
                "width" => "x",
                "height" => "y",
                other => other,
            };
            Some(Ok(fields
                .borrow()
                .get(key)
                .cloned()
                .unwrap_or(Value::Int(0))))
        }
        _ => None,
    });
}

fn op_call(m: &mut Machine, op: &Value, r: i64, c: i64) -> Result<(), ExecError> {
    m.call_value(op, vec![Value::Int(r), Value::Int(c)], RUNTIME_TU)?;
    Ok(())
}

fn install_asio(m: &mut Machine) {
    m.register_native("ctor::io_context", |_m, _a| {
        Ok(obj("__ctx", &[("jobs", Value::Int(0))]))
    });
    m.register_native("ctor::tcp_endpoint", |_m, args| {
        Ok(obj("__ep", &[("port", Value::Int(arg_i(&args, 0)))]))
    });
    m.register_native("ctor::tcp_socket", |_m, _a| {
        Ok(obj("__sock", &[("bytes", Value::Int(0))]))
    });
    m.register_native("ctor::tcp_acceptor", |_m, _a| Ok(obj("__acc", &[])));
    m.register_native("ctor::mutable_buffer", |_m, args| {
        Ok(obj("__mbuf", &[("n", Value::Int(arg_i(&args, 1)))]))
    });
    m.register_native("asio::buffer", |_m, args| {
        Ok(obj("__mbuf", &[("n", Value::Int(arg_i(&args, 1)))]))
    });
    // Async ops: invoke the handler synchronously, once, with a byte count.
    m.register_native("asio::async_read", |m, args| {
        m.cycles += 80;
        if let Some(h) = args.get(2) {
            m.call_value(h, vec![Value::Int(64)], RUNTIME_TU)?;
        }
        Ok(Value::Unit)
    });
    m.register_native("asio::async_write", |m, args| {
        m.cycles += 80;
        if let Some(h) = args.get(2) {
            m.call_value(h, vec![Value::Int(64)], RUNTIME_TU)?;
        }
        Ok(Value::Unit)
    });
    m.register_native("asio::async_accept", |m, args| {
        m.cycles += 120;
        if let Some(h) = args.get(1) {
            m.call_value(h, vec![Value::Int(0)], RUNTIME_TU)?;
        }
        Ok(Value::Unit)
    });
    m.register_native("asio::post", |m, args| {
        if let Some(h) = args.get(1) {
            m.call_value(h, vec![], RUNTIME_TU)?;
        }
        Ok(Value::Unit)
    });
    m.set_method_dispatcher(|m, recv, method, _args| {
        let Value::Obj { fields, .. } = recv else {
            return None;
        };
        match method {
            "run" => {
                m.cycles += 40;
                Some(Ok(Value::Int(1)))
            }
            "stop" | "close" => Some(Ok(Value::Unit)),
            "stopped" | "failed" => Some(Ok(Value::Bool(false))),
            "is_open" => Some(Ok(Value::Bool(true))),
            "available" | "size" => Some(Ok(Value::Int(64))),
            "value" => Some(Ok(Value::Int(0))),
            "use_count" => Some(Ok(Value::Int(1))),
            "port" => Some(Ok(fields
                .borrow()
                .get("port")
                .cloned()
                .unwrap_or(Value::Int(0)))),
            _ => None,
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use yalla_cpp::parse::parse_str;
    use yalla_sim::ir::ExecConfig;

    #[test]
    fn kokkos_parallel_for_over_policy() {
        let mut m = Machine::new(ExecConfig::default());
        install(&mut m, RuntimeKind::Kokkos);
        m.load_tu(
            &parse_str(
                r#"
int go(int leagues) {
  Kokkos::View<double**, Kokkos::LayoutRight> acc(leagues, 1);
  Kokkos::parallel_for(Kokkos::TeamPolicy<int>(leagues, 1), [&](member_t& mm) {
    acc(0, 0) += 1;
  });
  return 0;
}
"#,
            )
            .unwrap(),
            0,
        );
        // The lambda has a typed param; our machine binds by position.
        m.call("go", vec![Value::Int(5)], 0).unwrap();
        assert!(m.cycles > 0);
    }

    #[test]
    fn json_parse_and_write() {
        let mut m = Machine::new(ExecConfig::default());
        install(&mut m, RuntimeKind::Json);
        m.load_tu(
            &parse_str(
                r#"
int go(rapidjson::Document& doc) {
  doc.Parse("{\"a\": 1, \"b\": 2}");
  return doc.MemberCount();
}
"#,
            )
            .unwrap(),
            0,
        );
        let doc = m.call("ctor::Document", vec![], RUNTIME_TU).unwrap();
        let v = m.call("go", vec![doc], 0).unwrap();
        assert!(v.as_i64().unwrap() > 0);
    }

    #[test]
    fn cv_for_each_pixel_invokes_lambda() {
        let mut m = Machine::new(ExecConfig::default());
        install(&mut m, RuntimeKind::Cv);
        m.load_tu(
            &parse_str(
                r#"
int go() {
  int hits = 0;
  cv::forEachPixel(cv::imread("x.png"), [&](int r, int c) { hits += 1; });
  return hits;
}
"#,
            )
            .unwrap(),
            0,
        );
        let v = m.call("go", vec![], 0).unwrap();
        assert_eq!(v.as_i64(), Some(64 * 64));
    }

    #[test]
    fn asio_handlers_fire() {
        let mut m = Machine::new(ExecConfig::default());
        install(&mut m, RuntimeKind::Asio);
        m.load_tu(
            &parse_str(
                r#"
int go(asio::tcp_socket& sock, asio::mutable_buffer& buf) {
  int seen = 0;
  asio::async_read(sock, buf, [&](int n) { seen += n; });
  asio::async_write(sock, buf, [&](int n) { seen += n; });
  return seen;
}
"#,
            )
            .unwrap(),
            0,
        );
        let sock = m.call("ctor::tcp_socket", vec![], RUNTIME_TU).unwrap();
        let buf = m
            .call(
                "ctor::mutable_buffer",
                vec![Value::Int(0), Value::Int(64)],
                RUNTIME_TU,
            )
            .unwrap();
        let v = m.call("go", vec![sock, buf], 0).unwrap();
        assert_eq!(v.as_i64(), Some(128));
    }
}
