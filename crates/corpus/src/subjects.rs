//! The 18 evaluation subjects (Tables 2 and 3 of the paper).

use std::sync::OnceLock;

use yalla_cpp::vfs::Vfs;

use crate::{miniasio, minicv, minijson, minikokkos, ministd};
use crate::{KernelSpec, RuntimeKind, Subject, Suite, UnknownSubject};

/// All 18 subjects, in the paper's Table 2 order.
pub fn all_subjects() -> Vec<Subject> {
    try_all_subjects().expect("Table 2 subject set is self-consistent")
}

fn try_all_subjects() -> Result<Vec<Subject>, UnknownSubject> {
    let mut v = vec![
        pykokkos("02", Suite::PyKokkos)?,
        pykokkos("team_policy", Suite::PyKokkos)?,
        pykokkos("nstream", Suite::PyKokkos)?,
        pykokkos("BinningKKSort", Suite::ExaMiniMd)?,
        pykokkos("FinalIntegrateFunctor", Suite::ExaMiniMd)?,
        pykokkos("ForceLJNeigh_for", Suite::ExaMiniMd)?,
        pykokkos("ForceLJNeigh_reduce", Suite::ExaMiniMd)?,
        pykokkos("InitialIntegrateFunctor", Suite::ExaMiniMd)?,
        pykokkos("init_system_get_n", Suite::ExaMiniMd)?,
        pykokkos("KinE", Suite::ExaMiniMd)?,
        pykokkos("Temperature", Suite::ExaMiniMd)?,
    ];
    v.extend([
        rapidjson("archiver")?,
        rapidjson("capitalize")?,
        rapidjson("condense")?,
        opencv("3calibration")?,
        opencv("drawing")?,
        opencv("laplace")?,
        asio("chat_server"),
    ]);
    Ok(v)
}

/// Looks up one subject by its Table 2 name.
pub fn subject_by_name(name: &str) -> Option<Subject> {
    all_subjects().into_iter().find(|s| s.name == name)
}

/// Looks up one subject by its Table 2 name, reporting unknown names as
/// a typed [`UnknownSubject`] error (for callers whose names come from
/// external input — CLI args, bench configs, persisted records).
///
/// # Errors
///
/// Returns [`UnknownSubject`] when `name` is not in Table 2.
pub fn try_subject_by_name(name: &str) -> Result<Subject, UnknownSubject> {
    subject_by_name(name).ok_or_else(|| UnknownSubject::new("Table 2", name))
}

// ---- shared library trees (built once per process) ------------------------

fn kokkos_base() -> &'static Vfs {
    static BASE: OnceLock<Vfs> = OnceLock::new();
    BASE.get_or_init(|| {
        let mut vfs = Vfs::new();
        minikokkos::install(&mut vfs);
        vfs
    })
}

fn json_base() -> &'static Vfs {
    static BASE: OnceLock<Vfs> = OnceLock::new();
    BASE.get_or_init(|| {
        let mut vfs = Vfs::new();
        minijson::install(&mut vfs);
        ministd::install(&mut vfs);
        vfs
    })
}

fn cv_base() -> &'static Vfs {
    static BASE: OnceLock<Vfs> = OnceLock::new();
    BASE.get_or_init(|| {
        let mut vfs = Vfs::new();
        minicv::install(&mut vfs);
        ministd::install(&mut vfs);
        vfs
    })
}

fn asio_base() -> &'static Vfs {
    static BASE: OnceLock<Vfs> = OnceLock::new();
    BASE.get_or_init(|| {
        let mut vfs = Vfs::new();
        miniasio::install(&mut vfs);
        ministd::install(&mut vfs);
        vfs
    })
}

// ---- PyKokkos / ExaMiniMD ---------------------------------------------------

fn pykokkos(name: &'static str, suite: Suite) -> Result<Subject, UnknownSubject> {
    let files = minikokkos::kernel_files(name)?;
    let mut vfs = kokkos_base().clone();
    vfs.add_file("functor.hpp", files.functor_hpp);
    vfs.add_file("kernel.cpp", files.kernel_cpp);
    vfs.add_file("driver.cpp", files.driver_cpp);
    Ok(Subject {
        name,
        suite,
        vfs,
        main_source: "kernel.cpp".into(),
        sources: vec!["kernel.cpp".into(), "functor.hpp".into()],
        header: minikokkos::TOP_HEADER.into(),
        pch_headers: vec![minikokkos::TOP_HEADER.into()],
        kernel: Some(KernelSpec {
            entry: "run_kernel".into(),
            args: vec![24, 48],
            runtime: RuntimeKind::Kokkos,
            repeat: 2_000,
        }),
    })
}

// ---- RapidJSON ---------------------------------------------------------------

fn rapidjson(name: &'static str) -> Result<Subject, UnknownSubject> {
    let mut vfs = json_base().clone();
    let (source, driver, extra_includes): (&str, &str, &str) = match name {
        "condense" => (
            r#"#include <rapidjson/document.h>
using rapidjson::Document;
using rapidjson::StringBuffer;
using rapidjson::Writer;
int count_members(Document& doc, const char* text) {
  doc.Parse(text);
  if (doc.HasParseError()) {
    return 0;
  }
  return doc.MemberCount();
}
int condense(Document& doc, StringBuffer& out, Writer<StringBuffer>& writer, const char* text) {
  int n = count_members(doc, text);
  writer.StartObject();
  for (int i = 0; i < n; i++) {
    writer.Key("k");
    writer.Int(i);
  }
  writer.EndObject();
  return out.GetSize() + n;
}
"#,
            r#"#include <rapidjson/document.h>
int condense(rapidjson::Document& doc, rapidjson::StringBuffer& out, rapidjson::Writer<rapidjson::StringBuffer>& writer, const char* text);
int run_kernel(int iters, int n) {
  rapidjson::Document doc;
  rapidjson::StringBuffer out;
  rapidjson::Writer<rapidjson::StringBuffer> writer(out);
  int total = 0;
  for (int i = 0; i < iters; i++) {
    total += condense(doc, out, writer, "{\"alpha\": 1, \"beta\": [2, 3]}");
  }
  return total;
}
"#,
            "",
        ),
        "capitalize" => (
            r#"#include <rapidjson/document.h>
#include <mini_std/io.hpp>
using rapidjson::Document;
using rapidjson::Value;
int capitalize_keys(Document& doc, const char* text) {
  doc.Parse(text);
  Value& root = doc.GetRoot();
  int upper = 0;
  int n = root.Size();
  for (int i = 0; i < n; i++) {
    const char* s = root.GetString();
    if (s) {
      upper++;
    }
  }
  return upper;
}
"#,
            r#"#include <rapidjson/document.h>
int capitalize_keys(rapidjson::Document& doc, const char* text);
int run_kernel(int iters, int n) {
  rapidjson::Document doc;
  int total = 0;
  for (int i = 0; i < iters; i++) {
    total += capitalize_keys(doc, "{\"name\": \"value\", \"k\": 2}");
  }
  return total;
}
"#,
            "",
        ),
        "archiver" => (
            r#"#include <rapidjson/document.h>
#include <mini_std/io.hpp>
#include <mini_std/containers.hpp>
#include <mini_std/algorithm.hpp>
using rapidjson::Document;
using rapidjson::StringBuffer;
using rapidjson::Writer;
int load_archive(Document& doc, const char* text) {
  doc.Parse(text);
  if (doc.HasParseError()) {
    return -1;
  }
  return doc.MemberCount();
}
int save_archive(Writer<StringBuffer>& writer, int records) {
  writer.StartObject();
  for (int i = 0; i < records; i++) {
    writer.Key("record");
    writer.Double(i * 1.5);
  }
  writer.EndObject();
  return records;
}
int roundtrip(Document& doc, StringBuffer& out, Writer<StringBuffer>& writer, const char* text) {
  int n = load_archive(doc, text);
  if (n < 0) {
    return 0;
  }
  return save_archive(writer, n) + out.GetSize();
}
"#,
            r#"#include <rapidjson/document.h>
int roundtrip(rapidjson::Document& doc, rapidjson::StringBuffer& out, rapidjson::Writer<rapidjson::StringBuffer>& writer, const char* text);
int run_kernel(int iters, int n) {
  rapidjson::Document doc;
  rapidjson::StringBuffer out;
  rapidjson::Writer<rapidjson::StringBuffer> writer(out);
  int total = 0;
  for (int i = 0; i < iters; i++) {
    total += roundtrip(doc, out, writer, "{\"records\": [1, 2, 3, 4], \"meta\": {\"v\": 2}}");
  }
  return total;
}
"#,
            "",
        ),
        other => return Err(UnknownSubject::new("rapidjson", other)),
    };
    let _ = extra_includes;
    let main = format!("{name}.cpp");
    vfs.add_file(&main, source);
    vfs.add_file("driver.cpp", driver);
    Ok(Subject {
        name,
        suite: Suite::RapidJson,
        vfs,
        main_source: main.clone(),
        sources: vec![main],
        header: minijson::TOP_HEADER.into(),
        pch_headers: vec![minijson::TOP_HEADER.into()],
        kernel: Some(KernelSpec {
            entry: "run_kernel".into(),
            args: vec![200, 0],
            runtime: RuntimeKind::Json,
            repeat: 400,
        }),
    })
}

// ---- OpenCV --------------------------------------------------------------------

fn opencv(name: &'static str) -> Result<Subject, UnknownSubject> {
    let mut vfs = cv_base().clone();
    let (source, driver, pch): (&str, &str, Vec<String>) = match name {
        "3calibration" => (
            r#"#include <opencv2/core.hpp>
#include <opencv2/imgproc.hpp>
#include <opencv2/calib3d.hpp>
#include <mini_std/io.hpp>
using cv::Mat;
using cv::Size;
double calibrate_three(Mat& obj_pts, Mat& img_pts, Size& size, Mat& camera, Mat& dist) {
  double err = 0;
  for (int cam = 0; cam < 3; cam++) {
    err += cv::calibrateCamera(obj_pts, img_pts, size, camera, dist);
  }
  cv::undistort(obj_pts, img_pts, camera, dist);
  return err;
}
int checker(Mat& img) {
  int count = 0;
  int r = img.rows;
  int c = img.cols;
  for (int i = 0; i < r; i++) {
    for (int j = 0; j < c; j++) {
      if (img.at(i, j) > 0.5) {
        count++;
      }
    }
  }
  return count;
}
"#,
            r#"#include <opencv2/core.hpp>
double calibrate_three(cv::Mat& obj_pts, cv::Mat& img_pts, cv::Size& size, cv::Mat& camera, cv::Mat& dist);
int checker(cv::Mat& img);
int run_kernel(int iters, int n) {
  cv::Mat obj(16, 16);
  cv::Mat img(16, 16);
  cv::Mat camera(3, 3);
  cv::Mat dist(1, 5);
  cv::Size size(640, 480);
  int total = 0;
  for (int i = 0; i < iters; i++) {
    total += calibrate_three(obj, img, size, camera, dist);
    total += checker(img);
  }
  return total;
}
"#,
            vec![
                minicv::CORE.into(),
                minicv::IMGPROC.into(),
                minicv::CALIB3D.into(),
            ],
        ),
        "drawing" => (
            r#"#include <opencv2/core.hpp>
#include <opencv2/imgproc.hpp>
#include <mini_std/io.hpp>
using cv::Mat;
using cv::Point;
using cv::Scalar;
int draw_scene(Mat& img, Point& a, Point& b, Scalar& color) {
  for (int i = 0; i < 8; i++) {
    cv::line(img, a, b, color, cv::LINE_8);
    cv::circle(img, a, 10 + i, color);
  }
  int bright = 0;
  cv::forEachPixel(img, [&](int r, int c) {
    if (img.at(r, c) > 0.9) {
      bright++;
    }
  });
  return bright;
}
"#,
            r#"#include <opencv2/core.hpp>
int draw_scene(cv::Mat& img, cv::Point& a, cv::Point& b, cv::Scalar& color);
int run_kernel(int iters, int n) {
  cv::Mat img(48, 48);
  cv::Point a(0, 0);
  cv::Point b(47, 47);
  cv::Scalar color(255, 0, 0);
  int total = 0;
  for (int i = 0; i < iters; i++) {
    total += draw_scene(img, a, b, color);
  }
  return total;
}
"#,
            vec![minicv::CORE.into(), minicv::IMGPROC.into()],
        ),
        "laplace" => (
            r#"#include <opencv2/core.hpp>
#include <opencv2/imgproc.hpp>
#include <opencv2/highgui.hpp>
#include <mini_std/io.hpp>
using cv::Mat;
using cv::Size;
double laplace_filter(Mat& src, Mat& dst, Size& ksize) {
  cv::GaussianBlur(src, dst, ksize, 1.5);
  cv::Laplacian(dst, dst, 3);
  double total = 0;
  int r = dst.rows;
  int c = dst.cols;
  for (int i = 0; i < r; i++) {
    for (int j = 0; j < c; j++) {
      total += dst.at(i, j);
    }
  }
  cv::imshow("laplace", dst);
  return total;
}
"#,
            r#"#include <opencv2/core.hpp>
double laplace_filter(cv::Mat& src, cv::Mat& dst, cv::Size& ksize);
int run_kernel(int iters, int n) {
  cv::Mat src(32, 32);
  cv::Mat dst(32, 32);
  cv::Size ksize(3, 3);
  double total = 0;
  for (int i = 0; i < iters; i++) {
    total += laplace_filter(src, dst, ksize);
  }
  return total > 0 ? 1 : 0;
}
"#,
            vec![
                minicv::CORE.into(),
                minicv::IMGPROC.into(),
                minicv::HIGHGUI.into(),
                crate::ministd::STD_IO.into(),
            ],
        ),
        other => return Err(UnknownSubject::new("opencv", other)),
    };
    let main = format!("{name}.cpp");
    vfs.add_file(&main, source);
    vfs.add_file("driver.cpp", driver);
    Ok(Subject {
        name,
        suite: Suite::OpenCv,
        vfs,
        main_source: main.clone(),
        sources: vec![main],
        header: minicv::CORE.into(),
        pch_headers: pch,
        kernel: Some(KernelSpec {
            entry: "run_kernel".into(),
            args: vec![40, 0],
            runtime: RuntimeKind::Cv,
            repeat: 300,
        }),
    })
}

// ---- Boost.Asio --------------------------------------------------------------------

fn asio(name: &'static str) -> Subject {
    let mut vfs = asio_base().clone();
    let source = r#"#include <boost/asio.hpp>
#include <boost/aux.hpp>
#include <mini_std/io.hpp>
#include <mini_std/containers.hpp>
#include <mini_std/algorithm.hpp>
using asio::tcp_socket;
using asio::mutable_buffer;
int handle_session(tcp_socket& socket, mutable_buffer& buf, int rounds) {
  int transferred = 0;
  for (int i = 0; i < rounds; i++) {
    asio::async_read(socket, buf, [&](int n) { transferred += n; });
    asio::async_write(socket, buf, [&](int n) { transferred += n; });
  }
  if (socket.is_open()) {
    transferred += socket.available();
  }
  return transferred;
}
int accept_loop(asio::tcp_acceptor& acceptor, tcp_socket& socket, mutable_buffer& buf, int sessions) {
  int total = 0;
  for (int s = 0; s < sessions; s++) {
    asio::async_accept(acceptor, [&](int code) { total += code; });
    total += handle_session(socket, buf, 4);
  }
  return total;
}
"#;
    let driver = r#"#include <boost/asio.hpp>
int accept_loop(asio::tcp_acceptor& acceptor, asio::tcp_socket& socket, asio::mutable_buffer& buf, int sessions);
int run_kernel(int sessions, int n) {
  asio::io_context ctx;
  asio::tcp_endpoint ep(4242);
  asio::tcp_acceptor acceptor(ctx, ep);
  asio::tcp_socket socket(ctx);
  asio::mutable_buffer buf(0, 512);
  return accept_loop(acceptor, socket, buf, sessions);
}
"#;
    let main = format!("{name}.cpp");
    vfs.add_file(&main, source);
    vfs.add_file("driver.cpp", driver);
    Subject {
        name,
        suite: Suite::BoostAsio,
        vfs,
        main_source: main.clone(),
        sources: vec![main],
        header: miniasio::TOP_HEADER.into(),
        pch_headers: vec![miniasio::TOP_HEADER.into(), miniasio::BOOST_AUX.into()],
        kernel: Some(KernelSpec {
            entry: "run_kernel".into(),
            args: vec![60, 0],
            runtime: RuntimeKind::Asio,
            repeat: 500,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yalla_cpp::frontend::Frontend;

    #[test]
    fn there_are_18_subjects() {
        let subjects = all_subjects();
        assert_eq!(subjects.len(), 18);
        let names: Vec<&str> = subjects.iter().map(|s| s.name).collect();
        assert!(names.contains(&"02"));
        assert!(names.contains(&"chat_server"));
        assert!(subject_by_name("condense").is_some());
        assert!(subject_by_name("nope").is_none());
    }

    #[test]
    fn unknown_names_are_typed_errors_not_panics() {
        let err = try_subject_by_name("nope").unwrap_err();
        assert_eq!(err.name, "nope");
        assert!(err.to_string().contains("`nope`"), "{err}");
        let err = minikokkos::kernel_files("ghost_kernel").unwrap_err();
        assert_eq!(err.name, "ghost_kernel");
        assert!(err.to_string().contains("kokkos kernel"), "{err}");
        assert!(try_subject_by_name("condense").is_ok());
    }

    #[test]
    fn non_kokkos_subjects_parse() {
        for name in ["condense", "drawing", "chat_server"] {
            let s = subject_by_name(name).unwrap();
            let fe = Frontend::new(s.vfs.clone());
            fe.parse_translation_unit(&s.main_source)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let fe2 = Frontend::new(s.vfs.clone());
            fe2.parse_translation_unit("driver.cpp")
                .unwrap_or_else(|e| panic!("{name} driver: {e}"));
        }
    }
}
