//! The evaluation corpus: synthetic miniature libraries and the 18 test
//! subjects of the paper's Tables 2 and 3.
//!
//! The paper evaluates YALLA on examples from PyKokkos/Kokkos, RapidJSON,
//! OpenCV and Boost.Asio. Those libraries cannot be vendored here, so this
//! crate builds *synthetic* stand-ins with the same structural statistics
//! the paper reports in Table 3 — how many headers a subject pulls in, how
//! many lines of code enter the translation unit, and how much of that a
//! substitution can remove — while exposing miniature APIs that exercise
//! every Header Substitution rule (classes, templates, nested-type
//! aliases, functions returning incomplete types by value, methods, call
//! operators, lambdas, enums).
//!
//! Each [`Subject`] carries a complete virtual file tree, knows which
//! header gets substituted, and (where the paper's Figure 8 needs a run
//! step) provides a kernel the [`yalla_sim::ir::Machine`] can execute
//! against the [`runtime`] natives.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gen;
pub mod miniasio;
pub mod minicv;
pub mod minijson;
pub mod minikokkos;
pub mod ministd;
pub mod runtime;
pub mod subjects;

use yalla_cpp::vfs::Vfs;

/// A subject (or per-suite generator) name that is not in the paper's
/// Table 2. Returned instead of panicking so callers driving subject
/// selection from external input — CLI arguments, bench configs, a cache
/// index — degrade to a reportable error, not an abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSubject {
    /// The name that failed to resolve.
    pub name: String,
    /// The family the name was looked up in (e.g. `"Table 2"`,
    /// `"kokkos kernel"`).
    pub family: &'static str,
}

impl UnknownSubject {
    /// A lookup failure of `name` within `family`.
    pub fn new(family: &'static str, name: impl Into<String>) -> Self {
        UnknownSubject {
            name: name.into(),
            family,
        }
    }
}

impl std::fmt::Display for UnknownSubject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown {} subject `{}`", self.family, self.name)
    }
}

impl std::error::Error for UnknownSubject {}

/// Which library family a subject belongs to (Table 2 "Subject" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// A PyKokkos-generated kernel (`02`, `team_policy`, `nstream`).
    PyKokkos,
    /// An ExaMiniMD kernel (also PyKokkos-generated, larger app).
    ExaMiniMd,
    /// RapidJSON example.
    RapidJson,
    /// OpenCV example.
    OpenCv,
    /// Boost.Asio example.
    BoostAsio,
}

impl Suite {
    /// Display name matching the paper's Table 2.
    pub fn name(self) -> &'static str {
        match self {
            Suite::PyKokkos => "PyKokkos",
            Suite::ExaMiniMd => "ExaMiniMD",
            Suite::RapidJson => "RapidJSON",
            Suite::OpenCv => "OpenCV",
            Suite::BoostAsio => "Boost.Asio",
        }
    }
}

/// Which native runtime a subject's kernel needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeKind {
    /// The mini-Kokkos parallel runtime.
    Kokkos,
    /// The mini-RapidJSON document runtime.
    Json,
    /// The mini-OpenCV image runtime.
    Cv,
    /// The mini-Asio session runtime.
    Asio,
}

/// How to execute a subject's kernel on the abstract machine.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Entry function name (must exist in the subject's sources).
    pub entry: String,
    /// Integer arguments passed to the entry.
    pub args: Vec<i64>,
    /// Natives to install.
    pub runtime: RuntimeKind,
    /// Times the entry is invoked per "run" (models the small-input runs
    /// of §5.4).
    pub repeat: u32,
}

/// One evaluation subject (a row of Tables 2 and 3).
#[derive(Debug, Clone)]
pub struct Subject {
    /// File/subject name (Table 2 "File" column).
    pub name: &'static str,
    /// Library family.
    pub suite: Suite,
    /// The complete file tree (library + subject files).
    pub vfs: Vfs,
    /// Translation-unit root.
    pub main_source: String,
    /// All user files (rewritten by YALLA).
    pub sources: Vec<String>,
    /// The expensive header the subject substitutes.
    pub header: String,
    /// Headers covered by the PCH configuration (often broader than the
    /// substituted header — real projects precompile a prefix header).
    pub pch_headers: Vec<String>,
    /// Kernel to run for development-cycle measurements, when applicable.
    pub kernel: Option<KernelSpec>,
}

pub use subjects::{all_subjects, subject_by_name, try_subject_by_name};
