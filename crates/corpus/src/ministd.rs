//! A miniature standard library.
//!
//! Subjects include std-ish group headers *in addition to* the expensive
//! library header; these are never substituted, which is why several
//! subjects in the paper's Table 3 keep tens of thousands of lines after
//! YALLA runs (e.g. `archiver` keeps 26k lines / 192 headers).

use yalla_cpp::vfs::Vfs;

use crate::gen::{generate_library, LibSpec};

/// Group header: IO (streams, files).
pub const STD_IO: &str = "mini_std/io.hpp";
/// Group header: containers.
pub const STD_CONTAINERS: &str = "mini_std/containers.hpp";
/// Group header: algorithms.
pub const STD_ALGORITHM: &str = "mini_std/algorithm.hpp";

/// Installs the three std group trees; returns the group header paths.
pub fn install(vfs: &mut Vfs) -> [&'static str; 3] {
    let groups: [(&str, &str, usize); 3] = [
        (STD_IO, "sio", 55),
        (STD_CONTAINERS, "sct", 70),
        (STD_ALGORITHM, "sal", 60),
    ];
    for (top, prefix, count) in groups {
        generate_library(
            vfs,
            &LibSpec {
                prefix,
                namespace: "std",
                dir: match prefix {
                    "sio" => "mini_std/io",
                    "sct" => "mini_std/containers",
                    _ => "mini_std/algorithm",
                },
                top_header: top,
                internal_headers: count,
                lines_per_header: 130,
                concrete_percent: 12,
                api: api(prefix),
            },
        );
    }
    [STD_IO, STD_CONTAINERS, STD_ALGORITHM]
}

fn api(prefix: &str) -> String {
    match prefix {
        "sio" => r#"
class string {
public:
  string();
  string(const char* s);
  int size() const;
  const char* c_str() const;
};
class ostream {
public:
  void put(char c);
  void flush();
};
class istream {
public:
  int get();
  bool good() const;
};
"#
        .to_string(),
        "sct" => r#"
template <typename T>
class vector {
public:
  vector();
  int size() const;
  void push_back(const T& value);
  T& operator[](int i);
};
template <typename K, typename V>
class map {
public:
  map();
  int count(const K& key) const;
  V& operator[](const K& key);
};
"#
        .to_string(),
        _ => r#"
template <typename It, typename T>
It find(It first, It last, const T& value);
template <typename It>
void sort(It first, It last);
template <typename T>
const T& max(const T& a, const T& b);
template <typename T>
const T& min(const T& a, const T& b);
"#
        .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yalla_cpp::frontend::Frontend;

    #[test]
    fn std_groups_parse_and_have_scale() {
        let mut vfs = Vfs::new();
        install(&mut vfs);
        vfs.add_file(
            "probe.cpp",
            format!(
                "#include <{STD_IO}>\n#include <{STD_CONTAINERS}>\n#include <{STD_ALGORITHM}>\nint main() {{ return 0; }}\n"
            ),
        );
        let fe = Frontend::new(vfs);
        let tu = fe.parse_translation_unit("probe.cpp").unwrap();
        assert!(tu.stats.header_count() > 180, "{}", tu.stats.header_count());
        assert!(tu.stats.lines_compiled > 18_000);
    }
}
