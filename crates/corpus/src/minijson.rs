//! The mini-RapidJSON library.
//!
//! Header-only, like the real thing. Its bulk is *concrete* inline code
//! (a hand-written SAX/DOM parser would be), which is why PCH helps it so
//! little in the paper's Table 2 (1.2×): precompiling the header saves
//! parsing but all that inline code still reaches the backend. YALLA
//! removes it from the user's TU entirely (up to 24.7× on `condense`).

use yalla_cpp::vfs::Vfs;

use crate::gen::{generate_library, LibSpec};

/// The substituted header.
pub const TOP_HEADER: &str = "rapidjson/document.h";

fn api() -> String {
    r#"
enum ParseFlag {
  kParseDefaultFlags = 0,
  kParseInsituFlag = 1,
  kParseNumbersAsStringsFlag = 64,
};
enum Type {
  kNullType = 0,
  kFalseType = 1,
  kTrueType = 2,
  kObjectType = 3,
  kArrayType = 4,
  kStringType = 5,
  kNumberType = 6,
};
class Value {
public:
  Value();
  bool IsObject() const;
  bool IsArray() const;
  bool IsNumber() const;
  int Size() const;
  double GetDouble() const;
  const char* GetString() const;
  Value& operator[](int index);
};
class Document {
public:
  Document();
  void Parse(const char* json);
  bool HasParseError() const;
  Value& GetRoot();
  int MemberCount() const;
};
class StringBuffer {
public:
  StringBuffer();
  const char* GetString() const;
  int GetSize() const;
  void Clear();
};
template <typename OutputStream>
class Writer {
public:
  Writer(OutputStream& os);
  bool StartObject();
  bool EndObject();
  bool Key(const char* name);
  bool Int(int value);
  bool Double(double value);
};
class Reader {
public:
  Reader();
  template <typename InputStream, typename Handler>
  bool Parse(InputStream& is, Handler& handler);
};
StringBuffer MakeBuffer();
"#
    .to_string()
}

/// Installs the tree; returns the umbrella header path.
pub fn install(vfs: &mut Vfs) -> String {
    generate_library(
        vfs,
        &LibSpec {
            prefix: "rj",
            namespace: "rapidjson",
            dir: "rapidjson/internal",
            top_header: TOP_HEADER,
            internal_headers: 195,
            lines_per_header: 160,
            concrete_percent: 45,
            api: api(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use yalla_cpp::frontend::Frontend;

    #[test]
    fn tree_scale_matches_condense_row() {
        let mut vfs = Vfs::new();
        install(&mut vfs);
        vfs.add_file("probe.cpp", format!("#include <{TOP_HEADER}>\n"));
        let fe = Frontend::new(vfs);
        let tu = fe.parse_translation_unit("probe.cpp").unwrap();
        // condense (Table 3): 33057 lines, 227 headers — the subject adds
        // a little of its own on top of the library's ~32k/196.
        assert!(
            (28_000..38_000).contains(&tu.stats.lines_compiled),
            "lines = {}",
            tu.stats.lines_compiled
        );
        assert_eq!(tu.stats.header_count(), 196);
    }

    #[test]
    fn backend_heavy_mix() {
        let mut vfs = Vfs::new();
        install(&mut vfs);
        vfs.add_file("probe.cpp", format!("#include <{TOP_HEADER}>\n"));
        let w = yalla_sim::measure_tu(&vfs, "probe.cpp", &[]).unwrap();
        // Lots of concrete inline code: this is what PCH cannot remove.
        assert!(w.concrete_body_stmts > 5_000, "{}", w.concrete_body_stmts);
    }
}
