//! The mini-Kokkos library: a synthetic stand-in for `Kokkos_Core.hpp`.
//!
//! Matches the structural statistics the paper reports for the PyKokkos
//! subjects (Table 3): including the umbrella header pulls in ~580 headers
//! and ~111k lines, almost none of which a kernel actually uses. The API
//! surface replicates the constructs of the paper's Figure 3: `View` with
//! layout template arguments, `TeamPolicy` with a *nested* `member_type`
//! alias (the §3.2.1 case), `TeamThreadRange` returning a value of an
//! `Impl` struct (incomplete-return wrapper case), and a templated
//! `parallel_for` taking that struct by value plus a lambda (both wrapper
//! cases at once).

use yalla_cpp::vfs::Vfs;

use crate::gen::{generate_library, LibSpec};
use crate::UnknownSubject;

/// The Kokkos umbrella header path.
pub const TOP_HEADER: &str = "Kokkos_Core.hpp";

/// Hand-written API placed in the umbrella header (inside `namespace
/// Kokkos`).
fn api() -> String {
    r#"
class OpenMP;
class Serial;
class Cuda;
class LayoutRight {};
class LayoutLeft {};

template <typename DataType, typename Layout = LayoutRight>
class View {
public:
  View();
  View(int n0);
  View(int n0, int n1);
  double& operator()(int i, int j);
  int extent(int dim) const;
  int span() const;
  int rank;
};

namespace Impl {
struct TeamThreadRangeBoundariesStruct {
  int start;
  int end;
};
template <typename Policy>
class HostThreadTeamMember {
public:
  int league_rank() const;
  int league_size() const;
  int team_size() const;
  int team_rank() const;
};
}

template <typename Space>
class TeamPolicy {
public:
  TeamPolicy(int league_size, int team_size);
  using member_type = Impl::HostThreadTeamMember<Space>;
  int league_size() const;
};

template <typename RangeSpace = OpenMP>
class RangePolicy {
public:
  RangePolicy(int begin, int end);
};

template <typename M>
Impl::TeamThreadRangeBoundariesStruct TeamThreadRange(M& member, int count);

template <typename R, typename F>
void parallel_for(R range, F functor);

template <typename F>
void single(F functor);

void initialize();
void finalize();
void fence();
int device_id();
"#
    .to_string()
}

/// Builds the mini-Kokkos tree into `vfs`; returns the umbrella header.
pub fn install(vfs: &mut Vfs) -> String {
    generate_library(
        vfs,
        &LibSpec {
            prefix: "kk",
            namespace: "Kokkos",
            dir: "kokkos/impl",
            top_header: TOP_HEADER,
            internal_headers: 580,
            lines_per_header: 186,
            concrete_percent: 6,
            api: api(),
        },
    )
}

/// A PyKokkos-style kernel subject: `functor.hpp` + `kernel.cpp` +
/// a `driver.cpp` that is *not* part of the substituted sources (it plays
/// the PyKokkos framework's role of constructing views and launching).
#[derive(Debug, Clone, Copy)]
pub struct KernelFiles {
    /// Functor header text.
    pub functor_hpp: &'static str,
    /// Kernel definition text.
    pub kernel_cpp: &'static str,
    /// Driver text.
    pub driver_cpp: &'static str,
}

/// Source files for a named PyKokkos/ExaMiniMD kernel. The kernels differ
/// in field counts and body shape (mirroring the paper's per-subject LOC
/// variation) but all exercise the full rule set.
///
/// # Errors
///
/// Returns [`UnknownSubject`] for names outside the paper's kernel set.
pub fn kernel_files(name: &str) -> Result<KernelFiles, UnknownSubject> {
    Ok(match name {
        "02" => KernelFiles {
            functor_hpp: r#"#pragma once
#include <Kokkos_Core.hpp>
using sp_t = Kokkos::OpenMP;
using member_t = Kokkos::TeamPolicy<sp_t>::member_type;
struct o2_functor {
  int cols;
  Kokkos::View<double**, Kokkos::LayoutRight> A;
  Kokkos::View<double**, Kokkos::LayoutRight> x;
  Kokkos::View<double**, Kokkos::LayoutRight> y;
  Kokkos::View<double**, Kokkos::LayoutRight> acc;
  void operator()(member_t &m);
};
"#,
            kernel_cpp: r#"#include "functor.hpp"
void o2_functor::operator()(member_t &m) {
  int j = m.league_rank();
  Kokkos::parallel_for(
    Kokkos::TeamThreadRange(m, cols),
    [&](int i) { acc(j, 0) += A(j, i) * x(i, 0) * y(j, 0); });
}
"#,
            driver_cpp: r#"#include "functor.hpp"
int run_kernel(int leagues, int cols) {
  Kokkos::View<double**, Kokkos::LayoutRight> A(leagues, cols);
  Kokkos::View<double**, Kokkos::LayoutRight> x(cols, 1);
  Kokkos::View<double**, Kokkos::LayoutRight> y(leagues, 1);
  Kokkos::View<double**, Kokkos::LayoutRight> acc(leagues, 1);
  o2_functor f{cols, A, x, y, acc};
  Kokkos::parallel_for(Kokkos::TeamPolicy<sp_t>(leagues, 1), f);
  return 0;
}
"#,
        },
        "team_policy" => KernelFiles {
            functor_hpp: r#"#pragma once
#include <Kokkos_Core.hpp>
using sp_t = Kokkos::OpenMP;
using member_t = Kokkos::TeamPolicy<sp_t>::member_type;
struct team_functor {
  int width;
  int scale;
  Kokkos::View<double**, Kokkos::LayoutRight> data;
  Kokkos::View<double**, Kokkos::LayoutRight> out;
  void operator()(member_t &m);
};
"#,
            kernel_cpp: r#"#include "functor.hpp"
void team_functor::operator()(member_t &m) {
  int row = m.league_rank();
  int ts = m.team_size();
  Kokkos::parallel_for(
    Kokkos::TeamThreadRange(m, width),
    [&](int i) { out(row, i) = data(row, i) * scale + ts; });
}
"#,
            driver_cpp: r#"#include "functor.hpp"
int run_kernel(int leagues, int width) {
  Kokkos::View<double**, Kokkos::LayoutRight> data(leagues, width);
  Kokkos::View<double**, Kokkos::LayoutRight> out(leagues, width);
  team_functor f{width, 3, data, out};
  Kokkos::parallel_for(Kokkos::TeamPolicy<sp_t>(leagues, 2), f);
  return 0;
}
"#,
        },
        "nstream" => KernelFiles {
            functor_hpp: r#"#pragma once
#include <Kokkos_Core.hpp>
using sp_t = Kokkos::OpenMP;
using member_t = Kokkos::TeamPolicy<sp_t>::member_type;
struct nstream_functor {
  int n;
  Kokkos::View<double**, Kokkos::LayoutRight> a;
  Kokkos::View<double**, Kokkos::LayoutRight> b;
  Kokkos::View<double**, Kokkos::LayoutRight> c;
  void operator()(member_t &m);
};
"#,
            kernel_cpp: r#"#include "functor.hpp"
void nstream_functor::operator()(member_t &m) {
  int j = m.league_rank();
  Kokkos::parallel_for(
    Kokkos::TeamThreadRange(m, n),
    [&](int i) { a(j, i) += b(j, i) + 3 * c(j, i); });
}
"#,
            driver_cpp: r#"#include "functor.hpp"
int run_kernel(int leagues, int n) {
  Kokkos::View<double**, Kokkos::LayoutRight> a(leagues, n);
  Kokkos::View<double**, Kokkos::LayoutRight> b(leagues, n);
  Kokkos::View<double**, Kokkos::LayoutRight> c(leagues, n);
  nstream_functor f{n, a, b, c};
  Kokkos::parallel_for(Kokkos::TeamPolicy<sp_t>(leagues, 1), f);
  return 0;
}
"#,
        },
        // ExaMiniMD kernels: same shape, different sizes/bodies.
        "BinningKKSort" => exa(
            "binning",
            r#"  int bin = m.league_rank();
  Kokkos::parallel_for(
    Kokkos::TeamThreadRange(m, n),
    [&](int i) {
      int key = i % 8;
      bins(bin, key) += positions(bin, i);
      counts(bin, 0) += 1;
    });
"#,
            &["positions", "bins", "counts"],
        ),
        "FinalIntegrateFunctor" => exa(
            "final_integrate",
            r#"  int atom = m.league_rank();
  Kokkos::parallel_for(
    Kokkos::TeamThreadRange(m, n),
    [&](int i) { velocities(atom, i) += forces(atom, i) * 0.5; });
"#,
            &["velocities", "forces"],
        ),
        "ForceLJNeigh_for" => exa(
            "force_lj",
            r#"  int atom = m.league_rank();
  Kokkos::parallel_for(
    Kokkos::TeamThreadRange(m, n),
    [&](int i) {
      double dx = positions(atom, i) - positions(atom, 0);
      double r2 = dx * dx + 1;
      double inv = 1 / r2;
      double inv3 = inv * inv * inv;
      forces(atom, i) += 24 * inv3 * (2 * inv3 - 1) * inv * dx;
      energies(atom, 0) += 4 * inv3 * (inv3 - 1);
    });
"#,
            &["positions", "forces", "energies"],
        ),
        "ForceLJNeigh_reduce" => exa(
            "force_lj_red",
            r#"  int atom = m.league_rank();
  Kokkos::parallel_for(
    Kokkos::TeamThreadRange(m, n),
    [&](int i) {
      double dx = positions(atom, i) - positions(atom, 0);
      double r2 = dx * dx + 1;
      double inv = 1 / r2;
      double contrib = 4 * inv * (inv - 1);
      totals(atom, 0) += contrib;
      virials(atom, 0) += contrib * r2;
    });
"#,
            &["positions", "totals", "virials"],
        ),
        "InitialIntegrateFunctor" => exa(
            "init_integrate",
            r#"  int atom = m.league_rank();
  Kokkos::parallel_for(
    Kokkos::TeamThreadRange(m, n),
    [&](int i) {
      velocities(atom, i) += forces(atom, i) * 0.5;
      positions(atom, i) += velocities(atom, i);
    });
"#,
            &["positions", "velocities", "forces"],
        ),
        "init_system_get_n" => exa(
            "init_system",
            r#"  int cell = m.league_rank();
  int base = cell * 4;
  Kokkos::parallel_for(
    Kokkos::TeamThreadRange(m, n),
    [&](int i) {
      positions(cell, i) = base + i * 0.25;
      ids(cell, i) = base + i;
      types(cell, 0) += 1;
    });
"#,
            &["positions", "ids", "types"],
        ),
        "KinE" => exa(
            "kin_e",
            r#"  int atom = m.league_rank();
  Kokkos::parallel_for(
    Kokkos::TeamThreadRange(m, n),
    [&](int i) {
      double v = velocities(atom, i);
      energies(atom, 0) += v * v * 0.5;
    });
"#,
            &["velocities", "energies"],
        ),
        "Temperature" => exa(
            "temperature",
            r#"  int atom = m.league_rank();
  Kokkos::parallel_for(
    Kokkos::TeamThreadRange(m, n),
    [&](int i) { sums(atom, 0) += velocities(atom, i) * velocities(atom, i); });
"#,
            &["velocities", "sums"],
        ),
        other => return Err(UnknownSubject::new("kokkos kernel", other)),
    })
}

/// Builds ExaMiniMD-style files from a kernel body and the view fields it
/// uses.
fn exa(tag: &str, body: &'static str, views: &[&'static str]) -> KernelFiles {
    // Leak the generated sources: subjects are built once per process and
    // the strings live for the whole run.
    let mut functor = String::from(
        "#pragma once\n#include <Kokkos_Core.hpp>\nusing sp_t = Kokkos::OpenMP;\nusing member_t = Kokkos::TeamPolicy<sp_t>::member_type;\n",
    );
    functor.push_str(&format!("struct {tag}_functor {{\n  int n;\n"));
    for v in views {
        functor.push_str(&format!(
            "  Kokkos::View<double**, Kokkos::LayoutRight> {v};\n"
        ));
    }
    functor.push_str("  void operator()(member_t &m);\n};\n");

    let kernel = format!(
        "#include \"functor.hpp\"\nvoid {tag}_functor::operator()(member_t &m) {{\n{body}}}\n"
    );

    let mut driver =
        String::from("#include \"functor.hpp\"\nint run_kernel(int leagues, int n) {\n");
    for v in views {
        driver.push_str(&format!(
            "  Kokkos::View<double**, Kokkos::LayoutRight> {v}(leagues, n);\n"
        ));
    }
    let args: Vec<String> = views.iter().map(|v| v.to_string()).collect();
    driver.push_str(&format!("  {tag}_functor f{{n, {}}};\n", args.join(", ")));
    driver.push_str(
        "  Kokkos::parallel_for(Kokkos::TeamPolicy<sp_t>(leagues, 1), f);\n  return 0;\n}\n",
    );

    KernelFiles {
        functor_hpp: Box::leak(functor.into_boxed_str()),
        kernel_cpp: Box::leak(kernel.into_boxed_str()),
        driver_cpp: Box::leak(driver.into_boxed_str()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yalla_cpp::frontend::Frontend;

    #[test]
    fn kokkos_tree_matches_table_3_scale() {
        let mut vfs = Vfs::new();
        install(&mut vfs);
        vfs.add_file(
            "probe.cpp",
            "#include <Kokkos_Core.hpp>\nint main() { return 0; }\n",
        );
        let fe = Frontend::new(vfs);
        let tu = fe.parse_translation_unit("probe.cpp").unwrap();
        // Paper Table 3: 581 headers, ~111300 lines.
        assert_eq!(tu.stats.header_count(), 581);
        assert!(
            (90_000..130_000).contains(&tu.stats.lines_compiled),
            "lines = {}",
            tu.stats.lines_compiled
        );
    }

    #[test]
    fn all_kernels_parse_against_the_library() {
        let mut base = Vfs::new();
        install(&mut base);
        for name in [
            "02",
            "team_policy",
            "nstream",
            "BinningKKSort",
            "FinalIntegrateFunctor",
            "ForceLJNeigh_for",
            "ForceLJNeigh_reduce",
            "InitialIntegrateFunctor",
            "init_system_get_n",
            "KinE",
            "Temperature",
        ] {
            let files = kernel_files(name).expect("known kernel");
            let mut vfs = base.clone();
            vfs.add_file("functor.hpp", files.functor_hpp);
            vfs.add_file("kernel.cpp", files.kernel_cpp);
            vfs.add_file("driver.cpp", files.driver_cpp);
            let fe = Frontend::new(vfs);
            fe.parse_translation_unit("kernel.cpp")
                .unwrap_or_else(|e| panic!("{name}: kernel.cpp does not parse: {e}"));
            let fe2 = Frontend::new(fe.vfs().clone());
            fe2.parse_translation_unit("driver.cpp")
                .unwrap_or_else(|e| panic!("{name}: driver.cpp does not parse: {e}"));
        }
    }
}
