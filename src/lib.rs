//! **yalla** — a from-scratch Rust reproduction of *"Speeding up the Local
//! C++ Development Cycle with Header Substitution"* (CGO 2025).
//!
//! Header Substitution replaces an expensive `#include` in C++ sources
//! with a generated *lightweight header* (forward declarations + function
//! and method *wrappers* + lambda-replacement *functors*), a *wrappers
//! file* holding the wrapper definitions and explicit instantiations, and
//! rewritten sources — cutting the lines of code entering the user's
//! translation unit by orders of magnitude and speeding the
//! edit-compile-run loop accordingly.
//!
//! This crate is a facade over the workspace:
//!
//! * [`cpp`] — the C++ subset frontend (VFS, lexer, preprocessor, parser,
//!   pretty printer) built for this reproduction,
//! * [`analysis`] — symbol tables, alias resolution, usage analysis, and
//!   the incomplete-type rules,
//! * [`core`] — the Header Substitution engine itself (the paper's
//!   contribution),
//! * [`sim`] — the compilation-pipeline and development-cycle simulator
//!   that stands in for the paper's Clang/GCC testbed,
//! * [`exec`] — the work-stealing task executor and dependency-DAG
//!   scheduler the engine's pipeline stages run on (`YALLA_WORKERS`),
//! * [`obs`] — the self-profiling layer: hierarchical spans, counters,
//!   and Chrome-trace output (`yalla --self-profile`),
//! * [`store`] — the persistent content-addressed on-disk artifact cache
//!   (`--cache-dir`/`YALLA_CACHE_DIR`): crash-safe record format with
//!   checksum footers, LRU eviction, and multi-process sharing,
//! * [`corpus`] — synthetic stand-ins for Kokkos, RapidJSON, OpenCV and
//!   Boost.Asio, plus the paper's 18 evaluation subjects,
//! * [`fuzz`] — the differential semantic-preservation fuzzer: random
//!   project generation, an execution oracle comparing original vs.
//!   substituted behavior on the simulator's machine, and a shrinker
//!   producing minimal repro fixtures (`yalla fuzz`).
//!
//! # Quick start
//!
//! ```
//! use yalla::{Engine, Options, Vfs};
//!
//! let mut vfs = Vfs::new();
//! vfs.add_file("widgets.hpp", "namespace w { class Widget { public: int id() const; }; }");
//! vfs.add_file(
//!     "app.cpp",
//!     "#include \"widgets.hpp\"\nint describe(w::Widget& widget) { return widget.id(); }\n",
//! );
//!
//! let result = Engine::new(Options {
//!     header: "widgets.hpp".into(),
//!     sources: vec!["app.cpp".into()],
//!     ..Options::default()
//! })
//! .run(&vfs)?;
//!
//! assert!(result.lightweight_header.contains("class Widget;"));
//! assert!(result.report.verification.passed());
//! # Ok::<(), yalla::YallaError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use yalla_analysis as analysis;
pub use yalla_core as core;
pub use yalla_corpus as corpus;
pub use yalla_cpp as cpp;
pub use yalla_exec as exec;
pub use yalla_fuzz as fuzz;
pub use yalla_obs as obs;
pub use yalla_sim as sim;
pub use yalla_store as store;

pub use yalla_core::{
    substitute_headers, Engine, MultiSubstitutionResult, Options, Report, Session, SessionRun,
    SubstitutionResult, YallaError,
};
pub use yalla_cpp::vfs::Vfs;
pub use yalla_cpp::Frontend;
pub use yalla_sim::{CompilerProfile, PhaseBreakdown};
