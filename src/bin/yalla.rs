//! The `yalla` command-line tool: Header Substitution on real files.
//!
//! Mirrors the original tool's interface (paper §4.1: "the user provides a
//! source file and the header file they want substituted"):
//!
//! ```text
//! yalla --header <NAME> [--include-dir <DIR>]... [--out-dir <DIR>]
//!       [--define NAME=VALUE]... [--keep <SYMBOL>]... [--no-verify]
//!       [--self-profile <OUT.json>] [--metrics] <SOURCES>...
//! ```
//!
//! Sources and every file reachable through `--include-dir` are loaded
//! into the in-memory file system, the engine runs, and the artifacts
//! (lightweight header, wrappers file, rewritten sources) are written to
//! `--out-dir` (default `yalla-out/`). Exit status is non-zero when the
//! engine fails or verification does not pass.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use yalla::{Engine, Options, Vfs};

struct Cli {
    header: String,
    sources: Vec<String>,
    include_dirs: Vec<PathBuf>,
    out_dir: PathBuf,
    defines: Vec<(String, String)>,
    keep: Vec<String>,
    verify: bool,
    self_profile: Option<PathBuf>,
    metrics: bool,
}

const USAGE: &str = "usage: yalla --header <NAME> [--include-dir <DIR>]... \
[--out-dir <DIR>] [--define NAME=VALUE]... [--keep <SYMBOL>]... [--no-verify] \
[--self-profile <OUT.json>] [--metrics] <SOURCES>...";

fn parse_args() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let mut cli = Cli {
        header: String::new(),
        sources: Vec::new(),
        include_dirs: Vec::new(),
        out_dir: PathBuf::from("yalla-out"),
        defines: Vec::new(),
        keep: Vec::new(),
        verify: true,
        self_profile: None,
        metrics: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--header" => {
                cli.header = args.next().ok_or("--header needs a value")?;
            }
            "--include-dir" | "-I" => {
                cli.include_dirs.push(PathBuf::from(
                    args.next().ok_or("--include-dir needs a value")?,
                ));
            }
            "--out-dir" | "-o" => {
                cli.out_dir = PathBuf::from(args.next().ok_or("--out-dir needs a value")?);
            }
            "--define" | "-D" => {
                let kv = args.next().ok_or("--define needs NAME=VALUE")?;
                match kv.split_once('=') {
                    Some((k, v)) => cli.defines.push((k.to_string(), v.to_string())),
                    None => cli.defines.push((kv, "1".to_string())),
                }
            }
            "--keep" => {
                cli.keep.push(args.next().ok_or("--keep needs a symbol")?);
            }
            "--no-verify" => cli.verify = false,
            "--self-profile" => {
                cli.self_profile = Some(PathBuf::from(
                    args.next().ok_or("--self-profile needs a path")?,
                ));
            }
            "--metrics" => cli.metrics = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{USAGE}"));
            }
            source => cli.sources.push(source.to_string()),
        }
    }
    if cli.header.is_empty() {
        return Err(format!("missing --header\n{USAGE}"));
    }
    if cli.sources.is_empty() {
        return Err(format!("no source files given\n{USAGE}"));
    }
    Ok(cli)
}

/// Loads a directory tree (C++ files only) into the VFS under its
/// directory-relative paths.
fn load_dir(vfs: &mut Vfs, dir: &Path) -> std::io::Result<usize> {
    let mut loaded = 0;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            let is_cpp = path
                .extension()
                .and_then(|e| e.to_str())
                .is_some_and(|e| matches!(e, "h" | "hpp" | "hh" | "hxx" | "cpp" | "cc" | "cxx"));
            if !is_cpp {
                continue;
            }
            let rel = path
                .strip_prefix(dir)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(&path)?;
            vfs.add_file(&rel, text);
            loaded += 1;
        }
    }
    Ok(loaded)
}

fn run() -> Result<(), String> {
    let cli = parse_args()?;
    if cli.self_profile.is_some() || cli.metrics {
        yalla::obs::enable();
        yalla::obs::global().set_process(1, "yalla");
    }
    let mut vfs = Vfs::new();
    for dir in &cli.include_dirs {
        let n = load_dir(&mut vfs, dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
        vfs.add_search_path("");
        eprintln!("loaded {n} files from {}", dir.display());
    }
    let mut source_names = Vec::new();
    for src in &cli.sources {
        let text = std::fs::read_to_string(src).map_err(|e| format!("reading {src}: {e}"))?;
        let name = Path::new(src)
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_else(|| src.clone());
        vfs.add_file(&name, text);
        source_names.push(name);
    }

    let options = Options {
        header: cli.header.clone(),
        sources: source_names,
        defines: cli.defines.clone(),
        extra_symbols: cli.keep.clone(),
        verify: cli.verify,
        ..Options::default()
    };
    let result = Engine::new(options.clone())
        .run(&vfs)
        .map_err(|e| e.to_string())?;

    print!("{}", result.report);
    for d in &result.plan.diagnostics {
        eprintln!("note: {}", d.message);
    }
    if cli.verify && !result.report.verification.passed() {
        return Err(format!(
            "verification failed: {:?}",
            result.report.verification
        ));
    }

    std::fs::create_dir_all(&cli.out_dir)
        .map_err(|e| format!("creating {}: {e}", cli.out_dir.display()))?;
    let write = |name: &str, text: &str| -> Result<(), String> {
        let path = cli.out_dir.join(name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
        std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
        Ok(())
    };
    write(&options.lightweight_name, &result.lightweight_header)?;
    write(&options.wrappers_name, &result.wrappers_file)?;
    for (name, text) in &result.rewritten_sources {
        write(name, text)?;
    }

    if let Some(path) = &cli.self_profile {
        let trace = yalla::obs::global().chrome_trace();
        std::fs::write(path, trace).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    if cli.metrics {
        print!("{}", yalla::obs::global().summary());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("yalla: {e}");
            ExitCode::FAILURE
        }
    }
}
