//! The `yalla` command-line tool: Header Substitution on real files.
//!
//! Mirrors the original tool's interface (paper §4.1: "the user provides a
//! source file and the header file they want substituted"):
//!
//! ```text
//! yalla --header <NAME> [--include-dir <DIR>]... [--out-dir <DIR>]
//!       [--define NAME=VALUE]... [--keep <SYMBOL>]... [--no-verify]
//!       [--iterate <SCRIPT>] [--cache-dir <DIR>] [--mem-budget <BYTES[k|M|G]>]
//!       [--self-profile <OUT.json>] [--event-log <OUT.jsonl>] [--metrics]
//!       <SOURCES>...
//! ```
//!
//! With `--cache-dir <DIR>` (or the `YALLA_CACHE_DIR` environment
//! variable) artifacts persist to an on-disk store shared across
//! processes: a rerun of an unchanged project in a *fresh* process is
//! disk-warm — no stage recomputes. Corrupt or torn cache entries are
//! detected by checksum and silently recomputed.
//!
//! Sources and every file reachable through `--include-dir` are loaded
//! into the in-memory file system, the engine runs, and the artifacts
//! (lightweight header, wrappers file, rewritten sources) are written to
//! `--out-dir` (default `yalla-out/`). Exit status is non-zero when the
//! engine fails or verification does not pass.
//!
//! The `serve` subcommand starts the long-lived daemon: a pool of warm
//! incremental sessions (one shard per project tree) behind a
//! line-delimited JSON protocol on a Unix socket:
//!
//! ```text
//! yalla serve --socket <PATH> [--workers N|max] [--cache-dir <DIR>]
//!             [--mem-budget <BYTES[k|M|G]>] [--event-log <OUT.jsonl>]
//!             [--metrics]
//! yalla stat <SOCKET>
//! ```
//!
//! With a cache dir, the daemon persists each project's record and run
//! artifacts as it serves, and a restarted daemon (clean exit *or*
//! `kill -9`) rebuilds its warm pool from disk: the first rerun per
//! project after restart is fully cached.
//!
//! Clients send one JSON object per line (`open`, `edit`, `rerun`,
//! `get`, `status`, `metrics`, `shutdown`) and read one response line
//! per request; edits batch on the shard until the next rerun. The
//! daemon exits when any client sends `shutdown`. `yalla stat <SOCKET>`
//! scrapes a running daemon and prints its live counters and latency
//! quantiles in Prometheus text format. With `--event-log <PATH>`
//! (accepted by both one-shot runs and the daemon) every request,
//! pipeline stage, and store lookup appends one JSON line stamped with
//! the request id that caused it, so a slow request can be joined to
//! its stage timings end to end.
//!
//! The `dump` subcommand inspects one record of the on-disk store
//! (DESIGN.md §13) without running anything:
//!
//! ```text
//! yalla dump --cache-dir <DIR> --key <HEX> [--ns parse|run|serve]
//!            [--format summary|text]
//! ```
//!
//! `--format=summary` prints the record's binary-module layout
//! (partitions, row counts, interned strings); `--format=text` renders a
//! `run` bundle's artifacts in the line-oriented text form — the debug
//! path kept when the wire format went binary.
//!
//! The `fuzz` subcommand runs the differential semantic-preservation
//! fuzzer instead:
//!
//! ```text
//! yalla fuzz [--seed N] [--iters K] [--shrink] [--sabotage KIND]
//!            [--session-every N] [--store <DIR>] [--repro-dir <DIR>]
//!            [--metrics]
//! yalla fuzz --replay <FIXTURE>...
//! ```
//!
//! Each iteration generates a random project, substitutes its expensive
//! header, executes original and substituted variants on the simulator's
//! abstract machine, and reports any observable-behavior divergence.
//! `--shrink` minimizes diverging cases and writes ready-to-run fixtures
//! into `--repro-dir` (default `tests/repros`); `--replay` re-checks
//! checked-in fixtures. `--sabotage probe-offset|zero-return` injects a
//! known-bad rewrite to demonstrate the oracle end to end.
//!
//! With `--iterate <SCRIPT>` the tool holds one incremental
//! [`yalla::Session`] and replays an edit script through it, printing the
//! per-stage cache outcome of every rerun. Script lines (blank lines and
//! `#` comments are skipped):
//!
//! ```text
//! edit <vfs-path> <disk-path>   # replace a file's text with a file on disk
//! append <vfs-path> <text...>   # append a line of text to a file
//! touch <vfs-path>              # rewrite a file with identical content
//! rerun                         # rerun the pipeline incrementally
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use yalla::{Engine, Options, Session, SubstitutionResult, Vfs};

struct Cli {
    header: String,
    sources: Vec<String>,
    include_dirs: Vec<PathBuf>,
    out_dir: PathBuf,
    defines: Vec<(String, String)>,
    keep: Vec<String>,
    verify: bool,
    iterate: Option<PathBuf>,
    cache_dir: Option<PathBuf>,
    self_profile: Option<PathBuf>,
    event_log: Option<PathBuf>,
    metrics: bool,
    mem_budget: Option<u64>,
}

const USAGE: &str = "usage: yalla --header <NAME> [--include-dir <DIR>]... \
[--out-dir <DIR>] [--define NAME=VALUE]... [--keep <SYMBOL>]... [--no-verify] \
[--iterate <SCRIPT>] [--cache-dir <DIR>] [--mem-budget <BYTES[k|M|G]>] \
[--self-profile <OUT.json>] [--event-log <OUT.jsonl>] [--metrics] <SOURCES>...";

fn parse_args() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let mut cli = Cli {
        header: String::new(),
        sources: Vec::new(),
        include_dirs: Vec::new(),
        out_dir: PathBuf::from("yalla-out"),
        defines: Vec::new(),
        keep: Vec::new(),
        verify: true,
        iterate: None,
        cache_dir: None,
        self_profile: None,
        event_log: None,
        metrics: false,
        mem_budget: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--header" => {
                cli.header = args.next().ok_or("--header needs a value")?;
            }
            "--include-dir" | "-I" => {
                cli.include_dirs.push(PathBuf::from(
                    args.next().ok_or("--include-dir needs a value")?,
                ));
            }
            "--out-dir" | "-o" => {
                cli.out_dir = PathBuf::from(args.next().ok_or("--out-dir needs a value")?);
            }
            "--define" | "-D" => {
                let kv = args.next().ok_or("--define needs NAME=VALUE")?;
                match kv.split_once('=') {
                    Some((k, v)) => cli.defines.push((k.to_string(), v.to_string())),
                    None => cli.defines.push((kv, "1".to_string())),
                }
            }
            "--keep" => {
                cli.keep.push(args.next().ok_or("--keep needs a symbol")?);
            }
            "--no-verify" => cli.verify = false,
            "--iterate" => {
                cli.iterate = Some(PathBuf::from(
                    args.next().ok_or("--iterate needs a script path")?,
                ));
            }
            "--cache-dir" => {
                cli.cache_dir = Some(PathBuf::from(
                    args.next().ok_or("--cache-dir needs a directory")?,
                ));
            }
            "--mem-budget" => {
                let v = args.next().ok_or("--mem-budget needs a value")?;
                cli.mem_budget = Some(
                    yalla::cpp::cache::parse_mem_budget(&v)
                        .map_err(|e| format!("bad --mem-budget: {e}"))?,
                );
            }
            "--self-profile" => {
                cli.self_profile = Some(PathBuf::from(
                    args.next().ok_or("--self-profile needs a path")?,
                ));
            }
            "--event-log" => {
                cli.event_log = Some(PathBuf::from(
                    args.next().ok_or("--event-log needs a path")?,
                ));
            }
            "--metrics" => cli.metrics = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{USAGE}"));
            }
            source => cli.sources.push(source.to_string()),
        }
    }
    if cli.header.is_empty() {
        return Err(format!("missing --header\n{USAGE}"));
    }
    if cli.sources.is_empty() {
        return Err(format!("no source files given\n{USAGE}"));
    }
    Ok(cli)
}

/// Resolves the on-disk artifact store: an explicit `--cache-dir` wins,
/// else the `YALLA_CACHE_DIR` environment variable, else no store.
fn open_store(
    cache_dir: Option<&Path>,
) -> Result<Option<std::sync::Arc<yalla::store::Store>>, String> {
    match cache_dir {
        Some(dir) => yalla::store::Store::open(dir)
            .map(|s| Some(std::sync::Arc::new(s)))
            .map_err(|e| format!("opening cache dir {}: {e}", dir.display())),
        None => Ok(yalla::store::Store::global()),
    }
}

/// Loads a directory tree (C++ files only) into the VFS under its
/// directory-relative paths.
fn load_dir(vfs: &mut Vfs, dir: &Path) -> std::io::Result<usize> {
    let mut loaded = 0;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            let is_cpp = path
                .extension()
                .and_then(|e| e.to_str())
                .is_some_and(|e| matches!(e, "h" | "hpp" | "hh" | "hxx" | "cpp" | "cc" | "cxx"));
            if !is_cpp {
                continue;
            }
            let rel = path
                .strip_prefix(dir)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(&path)?;
            vfs.add_file(&rel, text);
            loaded += 1;
        }
    }
    Ok(loaded)
}

/// Replays an edit script through one incremental [`Session`], printing
/// each rerun's per-stage cache outcome. Returns the last rerun's result.
fn iterate(
    options: Options,
    vfs: Vfs,
    script: &Path,
    store: Option<std::sync::Arc<yalla::store::Store>>,
) -> Result<SubstitutionResult, String> {
    let text = std::fs::read_to_string(script)
        .map_err(|e| format!("reading {}: {e}", script.display()))?;
    let mut session = Session::with_store(options, vfs, store);
    let run = session.rerun().map_err(|e| e.to_string())?;
    println!("iteration 0 (cold): {}", run.summary_line());
    let mut result = run.result;
    let mut iteration = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: String| format!("{}:{}: {msg}", script.display(), lineno + 1);
        let (cmd, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        match cmd {
            "edit" => {
                let (path, from) = rest
                    .trim()
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err("edit needs <vfs-path> <disk-path>".into()))?;
                let new_text = std::fs::read_to_string(from.trim())
                    .map_err(|e| err(format!("reading {}: {e}", from.trim())))?;
                session
                    .apply_edit(path, new_text)
                    .map_err(|e| err(e.to_string()))?;
            }
            "append" => {
                let (path, extra) = rest
                    .trim()
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err("append needs <vfs-path> <text>".into()))?;
                let id = session
                    .vfs()
                    .lookup(path)
                    .ok_or_else(|| err(format!("no such file `{path}`")))?;
                let mut new_text = session.vfs().text(id).to_string();
                new_text.push_str(extra);
                new_text.push('\n');
                session
                    .apply_edit(path, new_text)
                    .map_err(|e| err(e.to_string()))?;
            }
            "touch" => {
                let path = rest.trim();
                let id = session
                    .vfs()
                    .lookup(path)
                    .ok_or_else(|| err(format!("no such file `{path}`")))?;
                let same = session.vfs().text(id).to_string();
                session
                    .apply_edit(path, same)
                    .map_err(|e| err(e.to_string()))?;
            }
            "rerun" => {
                iteration += 1;
                let run = session.rerun().map_err(|e| e.to_string())?;
                println!("iteration {iteration}: {}", run.summary_line());
                result = run.result;
            }
            other => return Err(err(format!("unknown command `{other}`"))),
        }
    }
    Ok(result)
}

fn run() -> Result<(), String> {
    let cli = parse_args()?;
    if cli.self_profile.is_some() || cli.metrics {
        yalla::obs::enable();
        yalla::obs::global().set_process(1, "yalla");
    }
    if let Some(path) = &cli.event_log {
        yalla::obs::log::init_file(path)
            .map_err(|e| format!("opening event log {}: {e}", path.display()))?;
    }
    if let Some(bytes) = cli.mem_budget {
        yalla::cpp::cache::set_mem_budget(Some(bytes));
    }
    let mut vfs = Vfs::new();
    for dir in &cli.include_dirs {
        let n = load_dir(&mut vfs, dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
        vfs.add_search_path("");
        eprintln!("loaded {n} files from {}", dir.display());
    }
    let mut source_names = Vec::new();
    for src in &cli.sources {
        let text = std::fs::read_to_string(src).map_err(|e| format!("reading {src}: {e}"))?;
        let name = Path::new(src)
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_else(|| src.clone());
        vfs.add_file(&name, text);
        source_names.push(name);
    }

    let options = Options {
        header: cli.header.clone(),
        sources: source_names,
        defines: cli.defines.clone(),
        extra_symbols: cli.keep.clone(),
        verify: cli.verify,
        ..Options::default()
    };
    let store = open_store(cli.cache_dir.as_deref())?;
    let result = match &cli.iterate {
        Some(script) => iterate(options.clone(), vfs, script, store)?,
        // With a store attached, a one-shot run goes through a Session so
        // it both probes the disk tier (a fresh process on an unchanged
        // project is disk-warm) and persists its artifacts on the way out.
        None if store.is_some() => {
            Session::with_store(options.clone(), vfs, store)
                .rerun()
                .map_err(|e| e.to_string())?
                .result
        }
        None => Engine::new(options.clone())
            .run(&vfs)
            .map_err(|e| e.to_string())?,
    };

    print!("{}", result.report);
    for d in &result.plan.diagnostics {
        eprintln!("note: {}", d.message);
    }
    if cli.verify && !result.report.verification.passed() {
        return Err(format!(
            "verification failed: {:?}",
            result.report.verification
        ));
    }

    std::fs::create_dir_all(&cli.out_dir)
        .map_err(|e| format!("creating {}: {e}", cli.out_dir.display()))?;
    let write = |name: &str, text: &str| -> Result<(), String> {
        let path = cli.out_dir.join(name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
        std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
        Ok(())
    };
    write(&options.lightweight_name, &result.lightweight_header)?;
    write(&options.wrappers_name, &result.wrappers_file)?;
    for (name, text) in &result.rewritten_sources {
        write(name, text)?;
    }

    if let Some(path) = &cli.self_profile {
        let trace = yalla::obs::global().chrome_trace();
        std::fs::write(path, trace).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    if cli.metrics {
        print!("{}", yalla::obs::global().summary());
    }
    yalla::obs::log::flush();
    Ok(())
}

const FUZZ_USAGE: &str = "usage: yalla fuzz [--seed N] [--iters K] [--shrink] \
[--sabotage none|probe-offset|zero-return] [--session-every N] [--race-every N] \
[--cancel-every N] [--store <DIR>] [--repro-dir <DIR>] [--metrics] | \
yalla fuzz --replay <FIXTURE>...";

/// Replays checked-in repro fixtures: each must run divergence-free.
fn replay_fixtures(paths: &[String]) -> Result<(), String> {
    let mut failures = 0usize;
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let repro = yalla::fuzz::parse_fixture(&text).map_err(|e| format!("{path}: {e}"))?;
        let (vfs, options) = repro.project();
        let outcome = yalla::fuzz::oracle::run_case_on(
            &vfs,
            &options,
            yalla::fuzz::Sabotage::None,
            repro.entry_args,
        );
        match outcome {
            yalla::fuzz::CaseOutcome::Agree(trace) => {
                println!("replay {path}: ok ({} probes)", trace.probes.len());
            }
            yalla::fuzz::CaseOutcome::Diverged(d) => {
                eprintln!("replay {path}: DIVERGED\n{d}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} fixture(s) diverged"));
    }
    Ok(())
}

fn run_fuzz(args: &[String]) -> Result<(), String> {
    let mut config = yalla::fuzz::FuzzConfig::default();
    let mut repro_dir = PathBuf::from("tests/repros");
    let mut metrics = false;
    let mut replay: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--iters" => {
                config.iters = value("--iters")?
                    .parse()
                    .map_err(|e| format!("bad --iters: {e}"))?;
            }
            "--shrink" => config.shrink = true,
            "--sabotage" => {
                let s = value("--sabotage")?;
                config.sabotage = yalla::fuzz::Sabotage::parse(&s)
                    .ok_or(format!("unknown sabotage kind `{s}`\n{FUZZ_USAGE}"))?;
            }
            "--session-every" => {
                config.session_every = value("--session-every")?
                    .parse()
                    .map_err(|e| format!("bad --session-every: {e}"))?;
            }
            "--race-every" => {
                config.race_every = value("--race-every")?
                    .parse()
                    .map_err(|e| format!("bad --race-every: {e}"))?;
            }
            "--cancel-every" => {
                // Race cases arm the daemon's cancel-injection hook: every
                // rerun's first attempt trips at this checkpoint and must
                // recover by retrying with the same oracles holding.
                config.cancel_every = value("--cancel-every")?
                    .parse()
                    .map_err(|e| format!("bad --cancel-every: {e}"))?;
            }
            "--store" => config.store_dir = Some(PathBuf::from(value("--store")?)),
            "--repro-dir" => repro_dir = PathBuf::from(value("--repro-dir")?),
            "--metrics" => metrics = true,
            "--replay" => { /* the remaining positionals are fixtures */ }
            "--help" | "-h" => {
                println!("{FUZZ_USAGE}");
                return Ok(());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{FUZZ_USAGE}"));
            }
            fixture => replay.push(fixture.to_string()),
        }
    }
    if metrics {
        yalla::obs::enable();
    }
    if !replay.is_empty() {
        return replay_fixtures(&replay);
    }

    let report = yalla::fuzz::run_campaign(&config)?;
    println!(
        "fuzz: {} cases ({} session, {} race), {} divergence(s), {} session mismatch(es), \
         {} race mismatch(es)",
        report.cases,
        report.session_cases,
        report.race_cases,
        report.divergences.len(),
        report.session_mismatches,
        report.race_mismatches
    );
    for case in &report.divergences {
        eprintln!("case seed {:#x}: {}", case.case_seed, case.divergence);
        if let Some(fixture) = &case.fixture {
            std::fs::create_dir_all(&repro_dir)
                .map_err(|e| format!("creating {}: {e}", repro_dir.display()))?;
            let path = repro_dir.join(format!("repro_{:016x}.txt", case.case_seed));
            std::fs::write(&path, fixture)
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            eprintln!(
                "  minimized to {} line(s) in {} step(s); fixture: {}",
                case.shrunk_lines.unwrap_or(0),
                case.shrink_steps,
                path.display()
            );
        }
    }
    if metrics {
        print!("{}", yalla::obs::global().summary());
    }
    if report.clean() {
        Ok(())
    } else {
        Err("divergences found".to_string())
    }
}

const SERVE_USAGE: &str = "usage: yalla serve --socket <PATH> [--workers N|max] \
[--cache-dir <DIR>] [--mem-budget <BYTES[k|M|G]>] [--event-log <OUT.jsonl>] \
[--metrics]";

#[cfg(unix)]
fn run_serve(args: &[String]) -> Result<(), String> {
    let mut socket: Option<PathBuf> = None;
    let mut workers: Option<usize> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut event_log: Option<PathBuf> = None;
    let mut metrics = false;
    let mut mem_budget: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--cache-dir" => cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--mem-budget" => {
                let v = value("--mem-budget")?;
                mem_budget = Some(
                    yalla::cpp::cache::parse_mem_budget(&v)
                        .map_err(|e| format!("bad --mem-budget: {e}"))?,
                );
            }
            "--event-log" => event_log = Some(PathBuf::from(value("--event-log")?)),
            "--workers" => {
                let v = value("--workers")?;
                workers = Some(if v == "max" {
                    0 // Executor::new(0) sizes to hardware threads.
                } else {
                    v.parse().map_err(|e| format!("bad --workers: {e}"))?
                });
            }
            "--metrics" => metrics = true,
            "--help" | "-h" => {
                println!("{SERVE_USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}`\n{SERVE_USAGE}")),
        }
    }
    let socket = socket.ok_or(format!("missing --socket\n{SERVE_USAGE}"))?;
    if metrics {
        yalla::obs::enable();
    }
    if let Some(bytes) = mem_budget {
        // Every shard's ParseCache consults the process-wide budget, so
        // setting it before the server starts bounds the whole pool.
        yalla::cpp::cache::set_mem_budget(Some(bytes));
    }
    if let Some(path) = &event_log {
        yalla::obs::log::init_file(path)
            .map_err(|e| format!("opening event log {}: {e}", path.display()))?;
    }
    let exec = match workers {
        Some(n) => yalla::exec::Executor::new(n),
        None => yalla::exec::Executor::global().clone(),
    };
    let workers = exec.workers();
    let store = open_store(cache_dir.as_deref())?;
    let cache_note = store
        .as_ref()
        .map(|s| format!(", cache {}", s.dir().display()))
        .unwrap_or_default();
    let server = yalla::core::serve::Server::start_with_store(&socket, exec, store)
        .map_err(|e| format!("binding {}: {e}", socket.display()))?;
    println!(
        "yalla serve: listening on {} ({workers} workers{cache_note}, {} warm shard(s))",
        socket.display(),
        server.state().shard_count()
    );
    while !server.is_stopped() {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let requests = server.state().requests();
    server.join();
    println!("yalla serve: shutdown after {requests} request(s)");
    if metrics {
        print!("{}", yalla::obs::global().summary());
    }
    yalla::obs::log::flush();
    Ok(())
}

#[cfg(not(unix))]
fn run_serve(_args: &[String]) -> Result<(), String> {
    Err("yalla serve requires a platform with Unix sockets".to_string())
}

const DUMP_USAGE: &str = "usage: yalla dump --cache-dir <DIR> --key <HEX> \
[--ns parse|run|serve] [--format summary|text]";

/// Inspects one on-disk store record: validates it (header + checksum)
/// and prints either the binary module's layout (`--format=summary`,
/// the default) or — for `run` bundles — the full text rendering of the
/// persisted artifacts (`--format=text`, the debug path that replaced
/// text on the wire).
fn run_dump(args: &[String]) -> Result<(), String> {
    let mut cache_dir: Option<PathBuf> = None;
    let mut key: Option<u64> = None;
    let mut ns = yalla::store::NS_RUN.to_string();
    let mut format = "summary".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{DUMP_USAGE}");
                return Ok(());
            }
            "--cache-dir" => {
                let dir = it
                    .next()
                    .ok_or(format!("--cache-dir needs a value\n{DUMP_USAGE}"))?;
                cache_dir = Some(PathBuf::from(dir));
            }
            "--key" => {
                let hex = it
                    .next()
                    .ok_or(format!("--key needs a value\n{DUMP_USAGE}"))?;
                let hex = hex.trim_start_matches("0x");
                key = Some(
                    u64::from_str_radix(hex, 16).map_err(|e| format!("bad --key `{hex}`: {e}"))?,
                );
            }
            "--ns" => {
                ns = it
                    .next()
                    .ok_or(format!("--ns needs a value\n{DUMP_USAGE}"))?
                    .clone();
            }
            other if other.starts_with("--format") => {
                format = match other.strip_prefix("--format=") {
                    Some(v) => v.to_string(),
                    None => it
                        .next()
                        .ok_or(format!("--format needs a value\n{DUMP_USAGE}"))?
                        .clone(),
                };
            }
            other => return Err(format!("unknown argument `{other}`\n{DUMP_USAGE}")),
        }
    }
    let cache_dir = cache_dir.ok_or(format!("missing --cache-dir\n{DUMP_USAGE}"))?;
    let key = key.ok_or(format!("missing --key\n{DUMP_USAGE}"))?;
    let store = yalla::store::Store::open(&cache_dir)
        .map_err(|e| format!("opening store {}: {e}", cache_dir.display()))?;
    let view = store
        .get_view(&ns, key)
        .ok_or_else(|| format!("no valid record for ({ns}, {key:016x})"))?;
    match format.as_str() {
        "text" => {
            let result = yalla::core::persist::decode_run(&view)
                .ok_or("record payload is not a run bundle (try --ns run, or --format summary)")?;
            print!("{}", yalla::core::persist::render_text(&result));
        }
        "summary" => {
            let m = yalla::store::module::ModuleReader::parse(&view)
                .map_err(|e| format!("payload is not a module: {e}"))?;
            println!(
                "record ({ns}, {key:016x}): {} payload bytes, module kind {}, format v{}",
                view.len(),
                m.kind(),
                yalla::store::FORMAT_VERSION,
            );
            for (tag, part) in m.parts() {
                println!("  partition tag={tag}: {} rows", part.rows());
            }
            println!("  strings: {} interned", m.str_count());
        }
        other => return Err(format!("unknown format `{other}`\n{DUMP_USAGE}")),
    }
    Ok(())
}

const STAT_USAGE: &str = "usage: yalla stat <SOCKET>";

/// Scrapes a running daemon: sends one `metrics` request over the Unix
/// socket and prints the returned Prometheus text exposition to stdout.
#[cfg(unix)]
fn run_stat(args: &[String]) -> Result<(), String> {
    let mut socket: Option<PathBuf> = None;
    for arg in args {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{STAT_USAGE}");
                return Ok(());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{STAT_USAGE}"));
            }
            path => {
                if socket.is_some() {
                    return Err(format!("more than one socket given\n{STAT_USAGE}"));
                }
                socket = Some(PathBuf::from(path));
            }
        }
    }
    let socket = socket.ok_or(format!("missing socket path\n{STAT_USAGE}"))?;
    let mut stream = std::os::unix::net::UnixStream::connect(&socket)
        .map_err(|e| format!("connecting to {}: {e}", socket.display()))?;
    let response = yalla::core::serve::client_request(&mut stream, "{\"op\": \"metrics\"}")?;
    let text = response
        .get("text")
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("malformed metrics response: {response:?}"))?;
    print!("{text}");
    Ok(())
}

#[cfg(not(unix))]
fn run_stat(_args: &[String]) -> Result<(), String> {
    Err("yalla stat requires a platform with Unix sockets".to_string())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match argv.first().map(String::as_str) {
        Some("fuzz") => run_fuzz(&argv[1..]),
        Some("serve") => run_serve(&argv[1..]),
        Some("stat") => run_stat(&argv[1..]),
        Some("dump") => run_dump(&argv[1..]),
        _ => run(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("yalla: {e}");
            ExitCode::FAILURE
        }
    }
}
