//! Regression runner for fuzzer-minimized repro fixtures.
//!
//! Every fixture under `tests/repros/` was once a diverging case found by
//! `yalla fuzz` (most were minimized under an injected known-bad rewrite,
//! recorded in the fixture header). Replaying runs the *real* engine —
//! no sabotage — so each fixture pins a project shape the substitution
//! must handle divergence-free forever.

use yalla::fuzz::oracle::run_case_on;
use yalla::fuzz::{parse_fixture, CaseOutcome, Sabotage};

#[test]
fn checked_in_repros_stay_divergence_free() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("repros");
    let mut replayed = 0usize;
    for entry in std::fs::read_dir(&dir).expect("tests/repros exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("txt") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("fixture reads");
        let repro = parse_fixture(&text)
            .unwrap_or_else(|e| panic!("{}: malformed fixture: {e}", path.display()));
        let (vfs, options) = repro.project();
        match run_case_on(&vfs, &options, Sabotage::None, repro.entry_args) {
            CaseOutcome::Agree(trace) => {
                assert!(
                    !trace.probes.is_empty(),
                    "{}: trace is empty — fixture no longer exercises anything",
                    path.display()
                );
            }
            CaseOutcome::Diverged(d) => {
                panic!("{}: replay diverged:\n{d}", path.display());
            }
        }
        replayed += 1;
    }
    assert!(replayed > 0, "no fixtures found under {}", dir.display());
}
