//! Integration test: the paper's running example, Figures 3 → 4, driven
//! through the public facade.

use yalla::{Engine, Options, Vfs};

fn figure3_vfs() -> Vfs {
    let mut vfs = Vfs::new();
    vfs.add_file(
        "Kokkos_Core.hpp",
        r#"#pragma once
#include <Kokkos_Impl.hpp>
namespace Kokkos {
  class OpenMP;
  class LayoutRight {};
  template<class D, class L> class View {
  public:
    View();
    int& operator()(int i, int j);
  };
  template<class S> class TeamPolicy {
  public:
    using member_type = Impl::HostThreadTeamMember<S>;
  };
  template<class M> Impl::TeamThreadRangeBoundariesStruct TeamThreadRange(M& m, int n);
  template<class R, class F> void parallel_for(R range, F functor);
}
"#,
    );
    let mut impl_header = String::from(
        r#"#pragma once
namespace Kokkos { namespace Impl {
  struct TeamThreadRangeBoundariesStruct { int lo; int hi; };
  template<class P> class HostThreadTeamMember {
  public:
    int league_rank() const;
  };
"#,
    );
    // Filler standing in for the real header's bulk (~111k lines in the
    // paper) so the before/after LOC comparison is meaningful.
    for i in 0..300 {
        impl_header.push_str(&format!(
            "  template <typename T> inline T detail_{i}(T v) {{ return v; }}\n"
        ));
    }
    impl_header.push_str("} }\n");
    vfs.add_file("Kokkos_Impl.hpp", impl_header);
    vfs.add_file(
        "functor.hpp",
        r#"#pragma once
#include <Kokkos_Core.hpp>
using sp_t = Kokkos::OpenMP;
using member_t = Kokkos::TeamPolicy<sp_t>::member_type;
struct add_y {
  int y;
  Kokkos::View<int**, Kokkos::LayoutRight> x;
  void operator()(member_t &m);
};
"#,
    );
    vfs.add_file(
        "kernel.cpp",
        r#"#include "functor.hpp"
void add_y::operator()(member_t &m) {
  int j = m.league_rank();
  Kokkos::parallel_for(
    Kokkos::TeamThreadRange(m, 5),
    [&](int i) { x(j, i) += y; });
}
"#,
    );
    vfs
}

fn run() -> yalla::SubstitutionResult {
    Engine::new(Options {
        header: "Kokkos_Core.hpp".into(),
        sources: vec!["kernel.cpp".into(), "functor.hpp".into()],
        ..Options::default()
    })
    .run(&figure3_vfs())
    .expect("engine runs on the Figure 3 example")
}

#[test]
fn lightweight_header_matches_figure_4a() {
    let result = run();
    let lw = &result.lightweight_header;
    // Forward-declared classes, namespace-wrapped (Fig 4a lines 1-7).
    for expected in [
        "namespace Kokkos {",
        "class OpenMP;",
        "class LayoutRight;",
        "class View;",
        "class HostThreadTeamMember;",
    ] {
        assert!(lw.contains(expected), "missing `{expected}` in:\n{lw}");
    }
    // Function wrappers with the `_w` suffix (lines 10-16).
    assert!(lw.contains("TeamThreadRange_w"));
    assert!(lw.contains("parallel_for_w"));
    // The incomplete return type became a pointer.
    assert!(lw.contains("Kokkos::Impl::TeamThreadRangeBoundariesStruct*"));
    // Method wrappers (lines 18-21).
    assert!(lw.contains("league_rank"));
    assert!(lw.contains("paren_operator"));
    // The functor replacing the lambda (lines 23-28).
    assert!(lw.contains("struct yalla_functor_0"));
}

#[test]
fn sources_match_figure_4b() {
    let result = run();
    let functor = &result.rewritten_sources["functor.hpp"];
    assert!(functor.contains("#include \"yalla_lightweight.hpp\""));
    assert!(!functor.contains("Kokkos_Core.hpp"));
    // member_t re-aliased to the non-nested class (line 8).
    assert!(functor.contains("HostThreadTeamMember"));
    // View field pointerized (line 12).
    assert!(functor.contains("Kokkos::View<int**, Kokkos::LayoutRight>* x;"));

    let kernel = &result.rewritten_sources["kernel.cpp"];
    assert!(kernel.contains("league_rank(m)"));
    assert!(kernel.contains("TeamThreadRange_w(m, 5)"));
    assert!(kernel.contains("parallel_for_w("));
    assert!(kernel.contains("yalla_functor_0{x, j, y}"));
}

#[test]
fn wrappers_file_has_definitions_and_instantiations() {
    let result = run();
    let wf = &result.wrappers_file;
    assert!(wf.contains("#include <Kokkos_Core.hpp>"));
    // Heap allocation for the incomplete return type (§3.2.2).
    assert!(wf.contains("return new Kokkos::Impl::TeamThreadRangeBoundariesStruct"));
    // Explicit instantiation mentioning the generated functor (§3.4).
    assert!(wf.contains("yalla_functor_0"));
    // The deref helper for receiver/pointer-param indirection.
    assert!(wf.contains("namespace yalla_detail"));
}

#[test]
fn verification_passes_and_stats_shrink() {
    let result = run();
    assert!(
        result.report.verification.passed(),
        "{:?}",
        result.report.verification
    );
    assert!(result.report.before.loc > result.report.after.loc);
    assert!(result.report.before.headers > result.report.after.headers);
    assert_eq!(result.report.functors, 1);
    assert!(result.report.function_wrappers >= 2);
    assert!(result.report.method_wrappers >= 2);
}

#[test]
fn rewritten_output_reparses_via_facade() {
    let result = run();
    let mut vfs = figure3_vfs();
    let options = Options {
        header: "Kokkos_Core.hpp".into(),
        sources: vec!["kernel.cpp".into(), "functor.hpp".into()],
        ..Options::default()
    };
    result.install_into(&mut vfs, &options);
    let fe = yalla::Frontend::new(vfs);
    let tu = fe
        .parse_translation_unit("kernel.cpp")
        .expect("substituted TU parses");
    // Two headers now: the lightweight one and functor.hpp (Table 3's
    // "Yalla Headers = 2" for the PyKokkos subjects).
    assert_eq!(tu.stats.header_count(), 2);
}
