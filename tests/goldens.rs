//! Golden-snapshot tests for the generated artifacts.
//!
//! For every corpus subject, the exact text of the generated lightweight
//! header and wrappers file is pinned under `tests/goldens/`. Any engine
//! change that alters generated code — intentionally or not — shows up as
//! a readable diff here instead of as a silent behavior change.
//!
//! To accept intentional changes, regenerate the snapshots:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test goldens
//! ```

use std::path::PathBuf;

use yalla::corpus::all_subjects;
use yalla::{Engine, Options};

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
}

fn check(name: &str, kind: &str, actual: &str) -> Result<(), String> {
    let path = goldens_dir().join(format!("{name}.{kind}.expected"));
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(goldens_dir()).map_err(|e| e.to_string())?;
        std::fs::write(&path, actual).map_err(|e| format!("writing {}: {e}", path.display()))?;
        return Ok(());
    }
    let expected = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "missing golden {} ({e}); run UPDATE_GOLDENS=1 cargo test --test goldens",
            path.display()
        )
    })?;
    if expected == actual {
        return Ok(());
    }
    // Point at the first differing line so the failure reads like a diff.
    let line = expected
        .lines()
        .zip(actual.lines())
        .position(|(e, a)| e != a)
        .map(|i| i + 1)
        .unwrap_or_else(|| expected.lines().count().min(actual.lines().count()) + 1);
    Err(format!(
        "{name}: generated {kind} differs from {} at line {line}\n\
         expected: {:?}\n\
         actual:   {:?}\n\
         (UPDATE_GOLDENS=1 cargo test --test goldens to accept)",
        path.display(),
        expected.lines().nth(line - 1).unwrap_or("<eof>"),
        actual.lines().nth(line - 1).unwrap_or("<eof>"),
    ))
}

#[test]
fn generated_artifacts_match_goldens() {
    let subjects = all_subjects();
    assert_eq!(subjects.len(), 18, "the paper evaluates 18 subjects");
    let mut failures = Vec::new();
    for subject in subjects {
        let options = Options {
            header: subject.header.clone(),
            sources: subject.sources.clone(),
            ..Options::default()
        };
        let result = Engine::new(options)
            .run(&subject.vfs)
            .unwrap_or_else(|e| panic!("{}: engine: {e}", subject.name));
        for (kind, text) in [
            ("lightweight", &result.lightweight_header),
            ("wrappers", &result.wrappers_file),
        ] {
            if let Err(e) = check(subject.name, kind, text) {
                failures.push(e);
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}
