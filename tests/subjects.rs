//! Integration tests over the evaluation corpus: the engine must verify on
//! real subjects, the simulated speedup ordering must match the paper's
//! shape, and — the paper's strongest claim — the substituted program must
//! compute the *same result* as the original.

use yalla::corpus::{subject_by_name, Subject};
use yalla::{CompilerProfile, Engine, Options};
use yalla_bench::harness::{evaluate_subject, run_kernel_full};

fn options_for(subject: &Subject) -> Options {
    Options {
        header: subject.header.clone(),
        sources: subject.sources.clone(),
        ..Options::default()
    }
}

/// The representative pair the paper uses for its Figure 7 deep dive.
#[test]
fn kokkos_subject_02_shapes() {
    let subject = subject_by_name("02").expect("02 exists");
    let eval = evaluate_subject(&subject, &CompilerProfile::clang()).expect("02 evaluates");

    // Table 3 shape: ~111k lines -> tens; 58x headers -> 2.
    assert!(eval.default.work.lines > 90_000);
    assert!(eval.yalla.work.lines < 200);
    assert_eq!(eval.yalla.work.headers, 2);

    // Table 2 shape: YALLA order-of-tens speedup, PCH single-digit,
    // YALLA beats PCH.
    assert!(eval.yalla_speedup() > 20.0, "{}", eval.yalla_speedup());
    assert!(
        (1.5..10.0).contains(&eval.pch_speedup()),
        "{}",
        eval.pch_speedup()
    );
    assert!(eval.yalla.phases.total_ms() < eval.pch.phases.total_ms());

    // Figure 7 shape: PCH leaves the backend untouched; YALLA shrinks it.
    assert!((eval.pch.phases.backend_ms() - eval.default.phases.backend_ms()).abs() < 1e-9);
    assert!(eval.yalla.phases.backend_ms() < eval.default.phases.backend_ms() / 10.0);

    // §5.4 shape: the YALLA build runs slower (wrapper calls cannot be
    // inlined across TUs).
    let (d, y) = (
        eval.run_cycles_default.unwrap(),
        eval.run_cycles_yalla.unwrap(),
    );
    assert!(y > d, "yalla run ({y}) should be slower than default ({d})");
}

#[test]
fn condense_subject_shapes() {
    let subject = subject_by_name("condense").expect("condense exists");
    let eval = evaluate_subject(&subject, &CompilerProfile::clang()).expect("condense evaluates");
    // Paper: 24.7x yalla, 1.2x pch — backend-heavy header-only library.
    assert!(eval.yalla_speedup() > 10.0);
    assert!(eval.pch_speedup() < 2.5);
}

#[test]
fn kernels_compute_identical_results_after_substitution() {
    // The "runs correctly" guarantee, checked end to end: original and
    // substituted programs produce the same answer on the abstract
    // machine.
    for name in [
        "02",
        "nstream",
        "KinE",
        "condense",
        "drawing",
        "chat_server",
    ] {
        let subject = subject_by_name(name).expect("subject exists");
        let spec = subject.kernel.clone().expect("subject has a kernel");
        let options = options_for(&subject);
        let result = Engine::new(options.clone())
            .run(&subject.vfs)
            .unwrap_or_else(|e| panic!("{name}: engine: {e}"));
        assert!(result.report.verification.passed(), "{name}");
        let (_, original) =
            run_kernel_full(&subject, &spec, None).unwrap_or_else(|e| panic!("{name}: {e}"));
        let (_, substituted) = run_kernel_full(&subject, &spec, Some((&result, &options)))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            original, substituted,
            "{name}: substituted program computes a different result"
        );
    }
}

#[test]
fn every_subject_passes_verification() {
    // The full gauntlet (slower; the per-subject engine run parses the
    // whole library tree).
    for subject in yalla::corpus::all_subjects() {
        let result = Engine::new(options_for(&subject))
            .run(&subject.vfs)
            .unwrap_or_else(|e| panic!("{}: engine: {e}", subject.name));
        assert!(
            result.report.verification.passed(),
            "{}: verification failed: {:?}",
            subject.name,
            result.report.verification
        );
        assert!(
            result.report.before.loc > result.report.after.loc,
            "{}: substitution must shrink the TU",
            subject.name
        );
    }
}

/// Negative coverage for the verification pass on a real subject: a
/// *stale* lightweight header (the user edited a source to hold a
/// forward-declared class by value, but the generated artifacts were not
/// regenerated) and a *wrong* wrapper body must each be reported — the
/// engine's own artifacts must be the only ones that pass.
#[test]
fn verification_reports_stale_lightweight_and_broken_wrappers() {
    let subject = subject_by_name("02").expect("02 exists");
    let options = options_for(&subject);
    let result = Engine::new(options.clone())
        .run(&subject.vfs)
        .expect("engine runs");
    assert!(result.report.verification.passed(), "baseline must pass");

    // The user's "new feature": hold one of the classes the lightweight
    // header only forward-declares by value, without regenerating.
    let incomplete = &result
        .plan
        .classes
        .first()
        .expect("subject forward-declares classes")
        .key;
    let main = &options.sources[0];
    let mut stale_rewritten = result.rewritten_sources.clone();
    stale_rewritten
        .get_mut(main)
        .expect("main source was rewritten")
        .push_str(&format!("struct StaleHolder {{ {incomplete} held; }};\n"));

    // A wrapper whose body no longer parses (a half-applied merge).
    let broken_wrappers = format!(
        "{}\nint broken_wrapper(int a {{ return a; }}\n",
        result.wrappers_file
    );

    let v = yalla::core::verify::verify(
        &subject.vfs,
        &stale_rewritten,
        &options.lightweight_name,
        &result.lightweight_header,
        &options.wrappers_name,
        &broken_wrappers,
        main,
    );
    assert!(!v.passed());
    assert!(
        !v.violations.is_empty(),
        "stale lightweight: by-value use of {incomplete} must be flagged"
    );
    assert!(!v.wrappers_parse, "broken wrapper body must be flagged");
    assert!(
        v.sources_parse,
        "the stale source still parses; the incomplete-type rules catch it"
    );
}
