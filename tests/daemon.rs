//! `yalla serve` daemon tests over a real Unix socket: a smoke test
//! (start → one request cycle → clean shutdown) and a stress test — 8
//! client threads firing hundreds of interleaved `edit`/`rerun`/`get`/
//! `status` requests at several projects on one daemon, then checking
//! that no request deadlocked, no artifact bled across project shards,
//! and every project's final artifacts are byte-identical to a cold
//! single-threaded run over the same final file state.
#![cfg(unix)]

use std::collections::BTreeMap;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use yalla::core::serve::{client_request, Server};
use yalla::cpp::vfs::Vfs;
use yalla::exec::Executor;
use yalla::obs::chrome::escape_json;
use yalla::obs::json::JsonValue;
use yalla::{Engine, Options};

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("yalla-test-{tag}-{}.sock", std::process::id()))
}

fn connect(path: &std::path::Path) -> UnixStream {
    // The accept loop may still be binding; retry briefly.
    for _ in 0..100 {
        if let Ok(s) = UnixStream::connect(path) {
            return s;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("could not connect to {}", path.display());
}

fn ok(v: &JsonValue) -> bool {
    v.get("ok") == Some(&JsonValue::Bool(true))
}

/// Project `p`'s header. Each project gets its own marker class name, so
/// any cross-shard bleed is visible in every generated artifact.
fn header_text(p: usize) -> String {
    format!(
        "namespace pj{p} {{\nclass Marker{p} {{\n public:\n  int id() const;\n  int scale(int k) const;\n}};\n}}  // namespace pj{p}\n"
    )
}

/// Thread-private source file `t` of project `p` at revision `rev`.
fn source_text(p: usize, t: usize, rev: usize) -> String {
    format!(
        "#include \"pj{p}.hpp\"\nint use{t}(pj{p}::Marker{p}& m) {{ return m.id() + m.scale({rev}); }}\n"
    )
}

fn source_name(t: usize) -> String {
    format!("s{t}.cpp")
}

/// The `open` request for project `p` with `per` thread-private sources.
fn open_request(p: usize, per: usize) -> String {
    let mut files = vec![format!(
        "\"pj{p}.hpp\": \"{}\"",
        escape_json(&header_text(p))
    )];
    let mut sources = Vec::new();
    for t in 0..per {
        files.push(format!(
            "\"{}\": \"{}\"",
            source_name(t),
            escape_json(&source_text(p, t, 0))
        ));
        sources.push(format!("\"{}\"", source_name(t)));
    }
    format!(
        "{{\"op\": \"open\", \"project\": \"pj{p}\", \"header\": \"pj{p}.hpp\", \
         \"sources\": [{}], \"files\": {{{}}}}}",
        sources.join(", "),
        files.join(", ")
    )
}

fn cold_run(p: usize, final_revs: &[usize]) -> yalla::SubstitutionResult {
    let mut vfs = Vfs::new();
    vfs.add_file(&format!("pj{p}.hpp"), header_text(p));
    let mut sources = Vec::new();
    for (t, &rev) in final_revs.iter().enumerate() {
        vfs.add_file(&source_name(t), source_text(p, t, rev));
        sources.push(source_name(t));
    }
    Engine::new(Options {
        header: format!("pj{p}.hpp"),
        sources,
        ..Options::default()
    })
    .run(&vfs)
    .unwrap_or_else(|e| panic!("cold run of pj{p}: {e}"))
}

#[test]
fn smoke_open_rerun_get_shutdown() {
    let path = socket_path("smoke");
    let server = Server::start(&path, Executor::new(2)).expect("start server");
    let mut stream = connect(&path);

    let r = client_request(&mut stream, &open_request(0, 1)).unwrap();
    assert!(ok(&r), "{r:?}");
    let r = client_request(&mut stream, "{\"op\": \"rerun\", \"project\": \"pj0\"}").unwrap();
    assert!(ok(&r), "{r:?}");
    let r = client_request(
        &mut stream,
        "{\"op\": \"get\", \"project\": \"pj0\", \"artifact\": \"lightweight\"}",
    )
    .unwrap();
    assert!(
        r.get("text")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .contains("class Marker0;"),
        "{r:?}"
    );
    let r = client_request(&mut stream, "{\"op\": \"shutdown\"}").unwrap();
    assert!(ok(&r), "{r:?}");
    server.join();
    assert!(!path.exists(), "socket file removed on shutdown");
}

/// Crash recovery end to end against the real binary: a `yalla serve`
/// daemon with a cache dir is driven through open/edit/rerun, killed
/// with SIGKILL mid-steady-state (no shutdown handshake, no flush), and
/// restarted on the same cache dir. The restarted daemon must rebuild
/// its warm pool from disk — the very first rerun is fully cached — and
/// serve artifacts byte-identical to the pre-crash ones.
#[test]
fn sigkill_and_restart_on_same_cache_dir_is_disk_warm() {
    let cache = std::env::temp_dir().join(format!("yalla-test-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let spawn = |sock: &std::path::Path| -> std::process::Child {
        std::process::Command::new(env!("CARGO_BIN_EXE_yalla"))
            .args(["serve", "--socket"])
            .arg(sock)
            .arg("--cache-dir")
            .arg(&cache)
            .args(["--workers", "2"])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::inherit())
            .spawn()
            .expect("spawn yalla serve")
    };

    // Generation 1: open, warm up, edit, rerun; capture the artifacts.
    let sock1 = socket_path("crash-gen1");
    let mut daemon = spawn(&sock1);
    let mut stream = connect(&sock1);
    let r = client_request(&mut stream, &open_request(0, 1)).unwrap();
    assert!(ok(&r), "{r:?}");
    let r = client_request(&mut stream, "{\"op\": \"rerun\", \"project\": \"pj0\"}").unwrap();
    assert!(ok(&r), "{r:?}");
    let edit = format!(
        "{{\"op\": \"edit\", \"project\": \"pj0\", \"path\": \"s0.cpp\", \"text\": \"{}\"}}",
        escape_json(&source_text(0, 0, 3))
    );
    let r = client_request(&mut stream, &edit).unwrap();
    assert!(ok(&r), "{r:?}");
    let r = client_request(&mut stream, "{\"op\": \"rerun\", \"project\": \"pj0\"}").unwrap();
    assert!(ok(&r), "{r:?}");
    let before: Vec<String> = ["lightweight", "wrappers", "source:s0.cpp"]
        .iter()
        .map(|artifact| {
            let r = client_request(
                &mut stream,
                &format!("{{\"op\": \"get\", \"project\": \"pj0\", \"artifact\": \"{artifact}\"}}"),
            )
            .unwrap();
            r.get("text")
                .and_then(JsonValue::as_str)
                .unwrap_or_else(|| panic!("{artifact}: {r:?}"))
                .to_string()
        })
        .collect();

    // SIGKILL: no shutdown request, no clean exit path runs.
    daemon.kill().expect("SIGKILL the daemon");
    daemon.wait().expect("reap the daemon");
    let _ = std::fs::remove_file(&sock1);

    // Generation 2 on the same cache dir: the warm pool is rebuilt from
    // disk, so the first rerun recomputes nothing.
    let sock2 = socket_path("crash-gen2");
    let mut daemon = spawn(&sock2);
    let mut stream = connect(&sock2);
    let r = client_request(&mut stream, "{\"op\": \"status\"}").unwrap();
    assert_eq!(
        r.get("shards")
            .and_then(JsonValue::as_array)
            .map(<[JsonValue]>::len),
        Some(1),
        "warm pool rebuilt before any open: {r:?}"
    );
    let r = client_request(&mut stream, "{\"op\": \"rerun\", \"project\": \"pj0\"}").unwrap();
    assert!(ok(&r), "{r:?}");
    assert_eq!(
        r.get("fully_cached"),
        Some(&JsonValue::Bool(true)),
        "first rerun after kill -9 must be disk-warm: {r:?}"
    );
    for (artifact, want) in ["lightweight", "wrappers", "source:s0.cpp"]
        .iter()
        .zip(&before)
    {
        let r = client_request(
            &mut stream,
            &format!("{{\"op\": \"get\", \"project\": \"pj0\", \"artifact\": \"{artifact}\"}}"),
        )
        .unwrap();
        assert_eq!(
            r.get("text").and_then(JsonValue::as_str),
            Some(want.as_str()),
            "`{artifact}` diverged across the crash"
        );
    }
    let r = client_request(&mut stream, "{\"op\": \"shutdown\"}").unwrap();
    assert!(ok(&r), "{r:?}");
    let status = daemon.wait().expect("daemon exits after shutdown");
    assert!(status.success(), "clean exit: {status:?}");
    let _ = std::fs::remove_dir_all(&cache);
}

/// A slow subject's rerun is superseded twice by fast edits from another
/// connection: exactly one final rerun completes (absorbing both edits
/// through cancelled rounds), `serve.cancelled` counts the aborted
/// attempts, and `status` never reports a cancelled generation as
/// current — mid-flight it still shows the last *published* generation.
#[test]
fn superseded_rerun_coalesces_edits_and_cancels_cleanly() {
    let path = socket_path("supersede");
    let server = Server::start(&path, Executor::new(2)).expect("start server");

    // A slow project: 400ms of modeled build latency per rerun attempt
    // gives the superseding edits a wide window to land.
    let mut setup = connect(&path);
    let open = format!(
        "{{\"op\": \"open\", \"project\": \"slow\", \"header\": \"slow.hpp\", \
         \"sources\": [\"s0.cpp\"], \"build_latency_us\": 400000, \"files\": {{\
         \"slow.hpp\": \"{}\", \"s0.cpp\": \"{}\"}}}}",
        escape_json(&header_text(9)).replace("pj9", "slow"),
        escape_json(&source_text(9, 0, 0)).replace("pj9", "slow")
    );
    let r = client_request(&mut setup, &open).unwrap();
    assert!(ok(&r), "{r:?}");
    // Cold warm-up rerun: publishes generation 0.
    let r = client_request(&mut setup, "{\"op\": \"rerun\", \"project\": \"slow\"}").unwrap();
    assert!(ok(&r), "{r:?}");

    // The slow rerun, on its own connection.
    let rerun = {
        let path = path.clone();
        std::thread::spawn(move || {
            let mut stream = connect(&path);
            client_request(&mut stream, "{\"op\": \"rerun\", \"project\": \"slow\"}").unwrap()
        })
    };
    // Two superseding edits while the rerun sleeps its modeled build.
    std::thread::sleep(std::time::Duration::from_millis(80));
    for rev in [1usize, 2] {
        let edit = format!(
            "{{\"op\": \"edit\", \"project\": \"slow\", \"path\": \"s0.cpp\", \"text\": \"{}\"}}",
            escape_json(&source_text(9, 0, rev)).replace("pj9", "slow")
        );
        let r = client_request(&mut setup, &edit).unwrap();
        assert!(ok(&r), "{r:?}");
        // Status right after the supersede: the cancelled attempt must
        // not surface — the published generation is still the last
        // *completed* one (0, from the warm-up rerun).
        let status = client_request(&mut setup, "{\"op\": \"status\"}").unwrap();
        let shard = &status.get("shards").and_then(JsonValue::as_array).unwrap()[0];
        assert_eq!(
            shard.get("generation").and_then(JsonValue::as_f64),
            Some(0.0),
            "cancelled generation leaked into status: {status:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(80));
    }

    let r = rerun.join().expect("rerun thread");
    assert!(ok(&r), "{r:?}");
    // Exactly one final rerun completed (the warm-up plus this one),
    // having absorbed both edits through at least one cancelled round.
    assert_eq!(
        r.get("reruns").and_then(JsonValue::as_f64),
        Some(2.0),
        "{r:?}"
    );
    assert_eq!(
        r.get("edits_applied").and_then(JsonValue::as_f64),
        Some(2.0),
        "{r:?}"
    );
    assert!(
        r.get("superseded")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0)
            >= 1.0,
        "expected at least one cancelled round: {r:?}"
    );
    assert_eq!(
        r.get("generation").and_then(JsonValue::as_f64),
        Some(2.0),
        "{r:?}"
    );

    // The published artifact is the final source, not a stale one.
    let got = client_request(
        &mut setup,
        "{\"op\": \"get\", \"project\": \"slow\", \"artifact\": \"source:s0.cpp\"}",
    )
    .unwrap();
    assert!(
        got.get("text")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .contains("scale(m, 2)"),
        "{got:?}"
    );

    // The daemon counted the aborted attempts.
    let metrics = client_request(&mut setup, "{\"op\": \"metrics\"}").unwrap();
    let text = metrics.get("text").and_then(JsonValue::as_str).unwrap();
    let cancelled: i64 = text
        .lines()
        .find_map(|l| l.strip_prefix("yalla_serve_cancelled "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    assert!(
        cancelled >= 1,
        "serve.cancelled should count the aborted attempts:\n{text}"
    );
    let status = client_request(&mut setup, "{\"op\": \"status\"}").unwrap();
    let shard = &status.get("shards").and_then(JsonValue::as_array).unwrap()[0];
    assert!(
        shard
            .get("cancelled")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0)
            >= 1.0,
        "{status:?}"
    );

    let r = client_request(&mut setup, "{\"op\": \"shutdown\"}").unwrap();
    assert!(ok(&r), "{r:?}");
    server.join();
}

#[test]
fn stress_eight_clients_no_deadlock_no_bleed() {
    const PROJECTS: usize = 4;
    const THREADS: usize = 8;
    const THREADS_PER_PROJECT: usize = THREADS / PROJECTS;
    const REQUESTS_PER_THREAD: usize = 70; // 8 × 70 = 560 ≥ 500

    let path = socket_path("stress");
    let server = Server::start(&path, Executor::new(4)).expect("start server");

    // Open every project (and run it once so racing `get`s always have a
    // completed run) before the clients start.
    let mut setup = connect(&path);
    for p in 0..PROJECTS {
        let r = client_request(&mut setup, &open_request(p, THREADS_PER_PROJECT)).unwrap();
        assert!(ok(&r), "{r:?}");
        let r = client_request(
            &mut setup,
            &format!("{{\"op\": \"rerun\", \"project\": \"pj{p}\"}}"),
        )
        .unwrap();
        assert!(ok(&r), "{r:?}");
    }

    let rejected = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for thread in 0..THREADS {
        let path = path.clone();
        let rejected = Arc::clone(&rejected);
        handles.push(std::thread::spawn(move || {
            let p = thread % PROJECTS;
            let t = thread / PROJECTS; // this thread's private source file
            let mut stream = connect(&path);
            let mut rev = 0usize;
            // A fixed per-thread schedule keyed off the request index:
            // edits, reruns, artifact reads, and status checks interleave.
            for i in 0..REQUESTS_PER_THREAD {
                let request = match i % 7 {
                    0 | 3 => {
                        rev += 1;
                        format!(
                            "{{\"op\": \"edit\", \"project\": \"pj{p}\", \"path\": \"{}\", \"text\": \"{}\"}}",
                            source_name(t),
                            escape_json(&source_text(p, t, rev))
                        )
                    }
                    1 | 4 => format!("{{\"op\": \"rerun\", \"project\": \"pj{p}\"}}"),
                    2 => format!(
                        "{{\"op\": \"get\", \"project\": \"pj{p}\", \"artifact\": \"lightweight\"}}"
                    ),
                    5 => format!(
                        "{{\"op\": \"get\", \"project\": \"pj{p}\", \"artifact\": \"source:{}\"}}",
                        source_name(t)
                    ),
                    _ => "{\"op\": \"status\"}".to_string(),
                };
                let response = client_request(&mut stream, &request)
                    .unwrap_or_else(|e| panic!("thread {thread} request {i}: {e}"));
                if !ok(&response) {
                    rejected.fetch_add(1, Ordering::Relaxed);
                }
            }
            rev
        }));
    }
    let mut final_revs = vec![vec![0usize; THREADS_PER_PROJECT]; PROJECTS];
    for (thread, handle) in handles.into_iter().enumerate() {
        let rev = handle.join().expect("client thread panicked");
        final_revs[thread % PROJECTS][thread / PROJECTS] = rev;
    }
    assert_eq!(
        rejected.load(Ordering::Relaxed),
        0,
        "every request in the schedule is valid"
    );

    // Per project: drain pending edits, then the final artifacts must be
    // byte-identical to a cold single-threaded run over the final file
    // state, and must mention only this project's marker class.
    for (p, revs) in final_revs.iter().enumerate() {
        let r = client_request(
            &mut setup,
            &format!("{{\"op\": \"rerun\", \"project\": \"pj{p}\"}}"),
        )
        .unwrap();
        assert!(ok(&r), "{r:?}");
        let cold = cold_run(p, revs);
        let mut artifacts: BTreeMap<String, String> = BTreeMap::new();
        artifacts.insert("lightweight".into(), cold.lightweight_header.clone());
        artifacts.insert("wrappers".into(), cold.wrappers_file.clone());
        for (name, text) in &cold.rewritten_sources {
            artifacts.insert(format!("source:{name}"), text.clone());
        }
        for (artifact, expected) in &artifacts {
            let r = client_request(
                &mut setup,
                &format!(
                    "{{\"op\": \"get\", \"project\": \"pj{p}\", \"artifact\": \"{artifact}\"}}"
                ),
            )
            .unwrap();
            let got = r.get("text").and_then(JsonValue::as_str).unwrap_or("");
            assert_eq!(
                got, expected,
                "pj{p} `{artifact}` differs from the cold single-threaded run"
            );
            assert!(
                got.contains(&format!("Marker{p}")) || artifact.starts_with("source:"),
                "pj{p} `{artifact}` lost its own marker"
            );
            for other in 0..PROJECTS {
                if other != p {
                    assert!(
                        !got.contains(&format!("Marker{other}")),
                        "pj{p} `{artifact}` bled project pj{other}'s artifacts"
                    );
                }
            }
        }
    }

    let status = client_request(&mut setup, "{\"op\": \"status\"}").unwrap();
    assert_eq!(
        status
            .get("shards")
            .and_then(JsonValue::as_array)
            .map(<[JsonValue]>::len),
        Some(PROJECTS),
        "one shard per project: {status:?}"
    );
    let r = client_request(&mut setup, "{\"op\": \"shutdown\"}").unwrap();
    assert!(ok(&r), "{r:?}");
    server.join();
}
