//! Cancellation interleaving suite (the tail-latency control guarantee).
//!
//! A rerun superseded by a newer edit stops cooperatively at its next
//! stage boundary. This suite proves the *safety* half of that design:
//! wherever the cancel lands — injected deterministically at every
//! checkpoint a run has, on every worker count — the final state must be
//! byte-identical to a run that was never cancelled. No half-cancelled
//! artifact may survive in the stage caches, the published slot, or the
//! on-disk store.
//!
//! Determinism of the injection matters: [`CancelToken::trip_after`]
//! counts checkpoints atomically, so "cancel at boundary N" means the
//! same boundary every time, regardless of thread timing — the sweep
//! below genuinely visits every boundary instead of sampling whatever
//! the scheduler happened to produce.

use std::sync::Arc;
use std::time::Duration;

use yalla::core::persist::decode_run;
use yalla::core::serve::ServeState;
use yalla::exec::{CancelToken, Executor, Priority};
use yalla::obs::json::JsonValue;
use yalla::store::{Store, NS_RUN};
use yalla::{Options, Session, SubstitutionResult, Vfs, YallaError};

/// A deliberately small project — two translation units over one header —
/// so the boundary sweep below (every checkpoint × every worker count)
/// stays cheap enough to run exhaustively. The corpus-subject anchor for
/// the same property lives in `tests/determinism.rs`.
fn small_project() -> (Options, Vfs) {
    let mut vfs = Vfs::new();
    vfs.add_file(
        "rc.hpp",
        "namespace rc { class Widget { public: int id() const; int scale(int k) const; }; }\n",
    );
    vfs.add_file(
        "a.cpp",
        "#include \"rc.hpp\"\nint use_a(rc::Widget& w) { return w.id(); }\n",
    );
    vfs.add_file(
        "b.cpp",
        "#include \"rc.hpp\"\nint use_b(rc::Widget& w) { return w.scale(2); }\n",
    );
    let options = Options {
        header: "rc.hpp".to_string(),
        sources: vec!["a.cpp".to_string(), "b.cpp".to_string()],
        ..Options::default()
    };
    (options, vfs)
}

/// The observable output of one run, for byte-comparison.
fn fingerprint(result: &SubstitutionResult) -> (String, String, Vec<(String, String)>, String) {
    (
        result.lightweight_header.clone(),
        result.wrappers_file.clone(),
        result
            .rewritten_sources
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect(),
        format!("{:?}", result.report.verification),
    )
}

/// Counts how many checkpoints a cold run of the project passes: the
/// boundary axis of the sweep below.
fn boundary_count(options: &Options, vfs: &Vfs) -> u64 {
    let exec = Executor::new(1);
    let mut session = Session::new(options.clone(), vfs.clone());
    let token = CancelToken::new();
    session
        .rerun_with(&exec, &token, Priority::Interactive)
        .expect("probe run");
    token.checkpoints()
}

#[test]
fn cancellation_at_every_boundary_leaves_artifacts_byte_identical() {
    let (options, vfs) = small_project();
    let baseline = {
        let exec = Executor::new(1);
        let mut session = Session::new(options.clone(), vfs.clone());
        fingerprint(&session.rerun_on(&exec).expect("clean run").result)
    };
    let boundaries = boundary_count(&options, &vfs);
    // Entry + store boundary + one checkpoint per live node (parse,
    // analyze, plan, emit, one per rewritten source, verify): 2 + 4 +
    // 2 + 1 for this two-source project.
    assert_eq!(
        boundaries, 9,
        "expected 9 cancel points for a two-source cold run"
    );
    for workers in [1usize, 2, 8] {
        let exec = Executor::new(workers);
        for boundary in 1..=boundaries {
            let mut session = Session::new(options.clone(), vfs.clone());
            let token = CancelToken::new();
            token.trip_after(boundary);
            match session.rerun_with(&exec, &token, Priority::Interactive) {
                Err(YallaError::Cancelled) => {}
                Ok(_) => panic!(
                    "run survived a token armed for boundary {boundary}/{boundaries} \
                     on {workers} workers"
                ),
                Err(e) => panic!("unexpected error at boundary {boundary}: {e}"),
            }
            // Recovery on the *same session*: whatever the cancelled
            // attempt left memoized must compose into byte-identical
            // artifacts, not a Franken-run.
            let run = session.rerun_on(&exec).unwrap_or_else(|e| {
                panic!("recovery after boundary {boundary} on {workers} workers: {e}")
            });
            assert_eq!(
                fingerprint(&run.result),
                baseline,
                "artifacts diverged after a cancel at boundary {boundary}/{boundaries} \
                 on {workers} workers"
            );
            // And the recovered session is genuinely warm: one more
            // rerun must hit every stage cache.
            let warm = session.rerun_on(&exec).expect("warm rerun");
            assert!(
                warm.fully_cached(),
                "caches poisoned by a cancel at boundary {boundary} on {workers} workers: {}",
                warm.summary_line()
            );
        }
    }
}

#[test]
fn cancelled_runs_persist_no_torn_store_records() {
    let dir = std::env::temp_dir().join(format!("yalla-cancel-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(Store::open(&dir).expect("open store"));
    let (options, vfs) = small_project();
    let baseline = {
        let exec = Executor::new(1);
        let mut session = Session::new(options.clone(), vfs.clone());
        fingerprint(&session.rerun_on(&exec).expect("clean run").result)
    };
    let boundaries = boundary_count(&options, &vfs);
    // Hammer the same store with runs cancelled at every boundary. As
    // stages land on disk the later sweeps start disk-warm, so the
    // injection point drifts across the whole lookup-and-recompute
    // surface — exactly the interleavings a busy daemon produces.
    for boundary in 1..=boundaries {
        let exec = Executor::new(2);
        let mut session =
            Session::with_store(options.clone(), vfs.clone(), Some(Arc::clone(&store)));
        let token = CancelToken::new();
        token.trip_after(boundary);
        let _ = session.rerun_with(&exec, &token, Priority::Interactive);
    }
    // Oracle 1: every run bundle in the store decodes whole. A cancelled
    // attempt either never persisted its bundle or persisted all of it.
    for key in store.keys(NS_RUN) {
        let view = store.get_view(NS_RUN, key).expect("readable record");
        assert!(
            decode_run(&view).is_some(),
            "torn run bundle under key {key:016x}"
        );
    }
    // Oracle 2: a fresh session over that store still answers
    // byte-identically to the never-cancelled baseline.
    let exec = Executor::new(2);
    let mut session = Session::with_store(options, vfs, Some(Arc::clone(&store)));
    let run = session.rerun_on(&exec).expect("disk-warm run");
    assert_eq!(fingerprint(&run.result), baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

fn field_u64(response: &str, key: &str) -> u64 {
    yalla::obs::json::parse(response)
        .expect("valid JSON")
        .get(key)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("missing `{key}` in {response}")) as u64
}

fn serve_source(rev: u64) -> String {
    format!("#include \\\"lib.hpp\\\"\\nint f(K::W& w) {{ return w.id() + {rev}; }}\\n")
}

#[test]
fn superseding_edits_cancel_the_inflight_rerun_and_coalesce() {
    let state = Arc::new(ServeState::new(Executor::new(2)));
    // A slow subject: 300ms of modeled build latency gives the edits
    // below a wide window to land mid-rerun.
    let open = format!(
        "{{\"op\": \"open\", \"project\": \"slow\", \"header\": \"lib.hpp\", \
         \"sources\": [\"main.cpp\"], \"build_latency_us\": 300000, \"files\": {{\
         \"lib.hpp\": \"namespace K {{ class W {{ public: int id() const; }}; }}\\n\", \
         \"main.cpp\": \"{}\"}}}}",
        serve_source(0)
    );
    let r = state.handle_line(&open);
    assert!(r.text.contains("\"created\": true"), "{}", r.text);

    let rerun = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || state.handle_line("{\"op\": \"rerun\", \"project\": \"slow\"}"))
    };
    // Two superseding edits while the rerun sleeps its modeled build.
    std::thread::sleep(Duration::from_millis(60));
    for rev in [1u64, 2] {
        let edit = format!(
            "{{\"op\": \"edit\", \"project\": \"slow\", \"path\": \"main.cpp\", \"text\": \"{}\"}}",
            serve_source(rev)
        );
        let r = state.handle_line(&edit);
        assert!(r.text.contains("\"ok\": true"), "{}", r.text);
        std::thread::sleep(Duration::from_millis(60));
    }
    let response = rerun.join().expect("rerun thread").text;
    // Exactly one rerun completed, having absorbed both edits through at
    // least one cancelled round.
    assert!(response.contains("\"ok\": true"), "{response}");
    assert_eq!(field_u64(&response, "reruns"), 1, "{response}");
    assert_eq!(field_u64(&response, "edits_applied"), 2, "{response}");
    assert!(field_u64(&response, "superseded") >= 1, "{response}");
    // The published artifact is the *final* source, not a stale one.
    let got = state
        .handle_line("{\"op\": \"get\", \"project\": \"slow\", \"artifact\": \"source:main.cpp\"}");
    assert!(got.text.contains("+ 2"), "{}", got.text);
    let status = state.handle_line("{\"op\": \"status\"}");
    assert!(status.text.contains("\"cancelled\":"), "{}", status.text);
}
