//! Parallel-determinism suite (the executor's core guarantee).
//!
//! The engine's pipeline stages run as a dependency DAG on a
//! work-stealing executor, so stage *scheduling* varies with the worker
//! count and with steal timing — but the *artifacts* must not. For every
//! corpus subject, a cold run on 1, 2, and 8 workers must produce
//! byte-identical lightweight headers, wrappers files, rewritten sources,
//! and verification outcomes; the 1-worker run must also match the pinned
//! goldens under `tests/goldens/`, tying the parallel runs back to the
//! sequential baseline the goldens were recorded from.

use std::path::PathBuf;

use yalla::corpus::all_subjects;
use yalla::exec::Executor;
use yalla::{Options, Session};

/// One subject's complete observable output for a given worker count.
#[derive(Debug, PartialEq)]
struct Artifacts {
    lightweight: String,
    wrappers: String,
    rewritten: std::collections::BTreeMap<String, String>,
    verification: String,
    summary: String,
}

/// The summary line minus its trailing wall-clock figure: the cache
/// outcomes and work counts must be deterministic, the milliseconds are
/// not.
///
/// When `YALLA_CACHE_DIR` is set (CI runs the whole suite again against
/// a shared on-disk store), stage outcomes stop being comparable across
/// runs by design — the first run misses the disk and populates it, every
/// later run is disk-warm with zero recomputed work. The artifacts are
/// still required to be byte-identical; only the summary comparison is
/// dropped.
fn normalized(summary: &str) -> String {
    if std::env::var("YALLA_CACHE_DIR").is_ok_and(|dir| !dir.is_empty()) {
        return String::new();
    }
    match summary.rsplit_once(", ") {
        Some((head, tail)) if tail.ends_with("ms)") => format!("{head})"),
        _ => summary.to_string(),
    }
}

fn run_cold(subject: &yalla::corpus::Subject, workers: usize) -> Artifacts {
    let options = Options {
        header: subject.header.clone(),
        sources: subject.sources.clone(),
        ..Options::default()
    };
    let exec = Executor::new(workers);
    let mut session = Session::new(options, subject.vfs.clone());
    let run = session
        .rerun_on(&exec)
        .unwrap_or_else(|e| panic!("{} on {workers} workers: {e}", subject.name));
    Artifacts {
        lightweight: run.result.lightweight_header.clone(),
        wrappers: run.result.wrappers_file.clone(),
        rewritten: run.result.rewritten_sources.clone(),
        verification: format!("{:?}", run.result.report.verification),
        summary: normalized(&run.summary_line()),
    }
}

fn golden(name: &str, kind: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
        .join(format!("{name}.{kind}.expected"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()))
}

#[test]
fn artifacts_are_byte_identical_across_worker_counts() {
    let subjects = all_subjects();
    assert_eq!(subjects.len(), 18, "the paper evaluates 18 subjects");
    let mut failures = Vec::new();
    for subject in &subjects {
        let baseline = run_cold(subject, 1);
        // The sequential run must match the pinned goldens, so the
        // cross-worker comparison below is anchored to the recorded
        // sequential baseline, not just to itself.
        if baseline.lightweight != golden(subject.name, "lightweight") {
            failures.push(format!("{}: 1-worker lightweight != golden", subject.name));
        }
        if baseline.wrappers != golden(subject.name, "wrappers") {
            failures.push(format!("{}: 1-worker wrappers != golden", subject.name));
        }
        for workers in [2usize, 8] {
            let parallel = run_cold(subject, workers);
            if parallel != baseline {
                let what = if parallel.lightweight != baseline.lightweight {
                    "lightweight header"
                } else if parallel.wrappers != baseline.wrappers {
                    "wrappers file"
                } else if parallel.rewritten != baseline.rewritten {
                    "rewritten sources"
                } else if parallel.verification != baseline.verification {
                    "verification outcome"
                } else {
                    "stage summary"
                };
                failures.push(format!(
                    "{}: {what} differs between 1 and {workers} workers\n  1: {}\n  {workers}: {}",
                    subject.name, baseline.summary, parallel.summary
                ));
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn cancellation_at_stage_boundaries_is_invisible_in_artifacts() {
    use yalla::exec::{CancelToken, Priority};
    use yalla::YallaError;
    // The exhaustive boundary × worker sweep on a small synthetic project
    // lives in tests/cancel.rs; this leg anchors the same guarantee on a
    // real corpus subject: a run cancelled at *any* stage boundary, on
    // any worker count, must recover to artifacts byte-identical to the
    // never-cancelled baseline (which the suite above ties to the pinned
    // goldens).
    let subjects = all_subjects();
    let subject = &subjects[0];
    let baseline = run_cold(subject, 1);
    let options = Options {
        header: subject.header.clone(),
        sources: subject.sources.clone(),
        ..Options::default()
    };
    // Probe the checkpoint count with an unarmed token. Under a disk-warm
    // store (YALLA_CACHE_DIR) the run short-circuits early and has fewer
    // boundaries — the sweep shrinks with it.
    let boundaries = {
        let exec = Executor::new(1);
        let mut session = Session::new(options.clone(), subject.vfs.clone());
        let token = CancelToken::new();
        session
            .rerun_with(&exec, &token, Priority::Interactive)
            .expect("probe run");
        token.checkpoints()
    };
    for workers in [1usize, 2, 8] {
        let exec = Executor::new(workers);
        for boundary in 1..=boundaries {
            let mut session = Session::new(options.clone(), subject.vfs.clone());
            let token = CancelToken::new();
            token.trip_after(boundary);
            match session.rerun_with(&exec, &token, Priority::Interactive) {
                Err(YallaError::Cancelled) => {}
                Ok(_) => panic!(
                    "{}: run survived a token armed for boundary {boundary}/{boundaries} \
                     on {workers} workers",
                    subject.name
                ),
                Err(e) => panic!(
                    "{}: boundary {boundary}: unexpected error {e}",
                    subject.name
                ),
            }
            let run = session.rerun_on(&exec).unwrap_or_else(|e| {
                panic!(
                    "{}: recovery after boundary {boundary} on {workers} workers: {e}",
                    subject.name
                )
            });
            // Compare everything but the summary: the recovery run is
            // legitimately part-cached, so its stage outcomes differ.
            assert_eq!(
                run.result.lightweight_header, baseline.lightweight,
                "{}: lightweight diverged after cancel at boundary {boundary} on {workers} workers",
                subject.name
            );
            assert_eq!(
                run.result.wrappers_file, baseline.wrappers,
                "{}: wrappers diverged after cancel at boundary {boundary} on {workers} workers",
                subject.name
            );
            assert_eq!(
                run.result
                    .rewritten_sources
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<std::collections::BTreeMap<_, _>>(),
                baseline.rewritten,
                "{}: rewritten sources diverged after cancel at boundary {boundary} on {workers} workers",
                subject.name
            );
            assert_eq!(
                format!("{:?}", run.result.report.verification),
                baseline.verification,
                "{}: verification diverged after cancel at boundary {boundary} on {workers} workers",
                subject.name
            );
        }
    }
}

#[test]
fn warm_rerun_is_fully_cached_on_every_worker_count() {
    // Scheduling must not poison the stage caches: a second rerun on the
    // same session — whatever the worker count — must hit every stage.
    for subject in all_subjects().iter().take(4) {
        let options = Options {
            header: subject.header.clone(),
            sources: subject.sources.clone(),
            ..Options::default()
        };
        for workers in [1usize, 2, 8] {
            let exec = Executor::new(workers);
            let mut session = Session::new(options.clone(), subject.vfs.clone());
            session
                .rerun_on(&exec)
                .unwrap_or_else(|e| panic!("{}: {e}", subject.name));
            let warm = session
                .rerun_on(&exec)
                .unwrap_or_else(|e| panic!("{}: {e}", subject.name));
            assert!(
                warm.fully_cached(),
                "{} on {workers} workers: warm rerun recomputed: {}",
                subject.name,
                warm.summary_line()
            );
        }
    }
}
