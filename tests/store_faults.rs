//! Fault-injection tests for the on-disk artifact store as the session
//! layer sees it: every injected corruption (truncated record, flipped
//! byte, partial write, vanished file) must degrade to a cache *miss* —
//! never an error, never a wrong artifact — with the `store.corruptions`
//! counter recording detection, and the recomputed artifacts must be
//! byte-identical to a storeless cold run. Also covers cross-process
//! warm restarts (a fresh `Store` handle on the same dir) and two
//! "processes" hammering one cache dir concurrently.

use std::path::PathBuf;
use std::sync::Arc;

use yalla::store::{Sabotage, Store};
use yalla::{Engine, Options, Session, SubstitutionResult, Vfs};

fn cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("yalla-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn project() -> (Vfs, Options) {
    let mut vfs = Vfs::new();
    vfs.add_file(
        "lib.hpp",
        "namespace K { class Widget { public: int id() const; int grow(int k) const; }; }\n",
    );
    vfs.add_file(
        "main.cpp",
        "#include \"lib.hpp\"\nint use(K::Widget& w) { return w.id() + w.grow(3); }\n",
    );
    vfs.add_file(
        "extra.cpp",
        "#include \"lib.hpp\"\nint more(K::Widget& w) { return w.grow(9); }\n",
    );
    let options = Options {
        header: "lib.hpp".into(),
        sources: vec!["main.cpp".into(), "extra.cpp".into()],
        ..Options::default()
    };
    (vfs, options)
}

fn storeless_cold() -> SubstitutionResult {
    let (vfs, options) = project();
    Engine::new(options).run(&vfs).expect("cold run")
}

fn assert_same_artifacts(got: &SubstitutionResult, want: &SubstitutionResult, context: &str) {
    assert_eq!(
        got.lightweight_header, want.lightweight_header,
        "{context}: lightweight header diverged"
    );
    assert_eq!(
        got.wrappers_file, want.wrappers_file,
        "{context}: wrappers file diverged"
    );
    assert_eq!(
        got.rewritten_sources, want.rewritten_sources,
        "{context}: rewritten sources diverged"
    );
}

#[test]
fn every_sabotage_mode_degrades_to_miss_with_identical_artifacts() {
    let want = storeless_cold();
    for (tag, mode, corrupting) in [
        ("truncate", Sabotage::Truncate, true),
        ("flip-byte", Sabotage::FlipByte, true),
        ("partial-write", Sabotage::PartialWrite, true),
        ("enoent", Sabotage::Enoent, false),
    ] {
        let dir = cache_dir(tag);

        // "Process" 1 writes every record through the sabotage hook.
        let writer = Arc::new(Store::open(&dir).expect("open store"));
        writer.set_sabotage(mode);
        let (vfs, options) = project();
        let run = Session::with_store(options, vfs, Some(Arc::clone(&writer)))
            .rerun()
            .expect("sabotaged writes must not fail the run");
        assert_same_artifacts(&run.result, &want, &format!("{tag}: writer run"));

        // "Process" 2 reads the damaged cache: every corrupted record is
        // detected, counted, and treated as a miss; the run recomputes
        // and still matches the cold artifacts exactly.
        let reader = Arc::new(Store::open(&dir).expect("reopen store"));
        let (vfs, options) = project();
        let run = Session::with_store(options, vfs, Some(Arc::clone(&reader)))
            .rerun()
            .expect("corrupt cache must degrade to recompute, not error");
        assert!(
            !run.fully_cached(),
            "{tag}: a sabotaged cache has nothing valid to serve"
        );
        assert_same_artifacts(&run.result, &want, &format!("{tag}: reader run"));
        let stats = reader.stats();
        if corrupting {
            assert!(
                stats.corrupt > 0,
                "{tag}: corruption must be detected and counted, stats = {stats:?}"
            );
        } else {
            // Enoent skips the write entirely: a plain miss, not corruption.
            assert_eq!(stats.corrupt, 0, "{tag}: stats = {stats:?}");
        }
        assert!(stats.misses > 0, "{tag}: stats = {stats:?}");

        // The reader re-persisted good records: a third handle is warm.
        let (vfs, options) = project();
        let rerun = Session::with_store(
            options,
            vfs,
            Some(Arc::new(Store::open(&dir).expect("third open"))),
        )
        .rerun()
        .expect("healed cache");
        assert!(
            rerun.fully_cached(),
            "{tag}: cache heals after one good run, got {}",
            rerun.summary_line()
        );
        assert_same_artifacts(&rerun.result, &want, &format!("{tag}: healed run"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn on_disk_torn_records_are_deleted_and_recomputed() {
    let dir = cache_dir("torn");
    let store = Arc::new(Store::open(&dir).expect("open store"));
    let (vfs, options) = project();
    Session::with_store(options, vfs, Some(Arc::clone(&store)))
        .rerun()
        .expect("cold run");

    // Tear every record on disk the way a crash mid-write (without the
    // atomic rename) or a bad sector would: chop each file in half.
    let mut torn = 0usize;
    for entry in std::fs::read_dir(&dir).expect("read cache dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rec") {
            let bytes = std::fs::read(&path).expect("read record");
            std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("tear record");
            torn += 1;
        }
    }
    assert!(
        torn >= 2,
        "expected parse + run records on disk, saw {torn}"
    );

    let reader = Arc::new(Store::open(&dir).expect("reopen"));
    let (vfs, options) = project();
    let run = Session::with_store(options, vfs, Some(Arc::clone(&reader)))
        .rerun()
        .expect("torn cache degrades to recompute");
    assert_same_artifacts(&run.result, &storeless_cold(), "torn cache");
    assert!(reader.stats().corrupt > 0, "{:?}", reader.stats());

    // Detection deletes the torn files, so the next handle sees only
    // freshly re-persisted good records and is warm again.
    let (vfs, options) = project();
    let healed = Session::with_store(
        options,
        vfs,
        Some(Arc::new(Store::open(&dir).expect("third open"))),
    )
    .rerun()
    .expect("healed");
    assert!(healed.fully_cached(), "{}", healed.summary_line());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fresh_process_is_disk_warm_with_zero_recomputed_stages() {
    let dir = cache_dir("warm");
    let cold_store = Arc::new(Store::open(&dir).expect("open store"));
    let (vfs, options) = project();
    let cold = Session::with_store(options, vfs, Some(cold_store))
        .rerun()
        .expect("cold run");
    assert!(!cold.fully_cached());

    // A fresh handle on the same dir stands in for a new process: no
    // in-memory state survives, only the cache dir.
    let warm_store = Arc::new(Store::open(&dir).expect("reopen store"));
    let (vfs, options) = project();
    let warm = Session::with_store(options, vfs, Some(Arc::clone(&warm_store)))
        .rerun()
        .expect("warm run");
    assert!(
        warm.fully_cached(),
        "disk-warm run must hit every stage: {}",
        warm.summary_line()
    );
    assert_eq!(warm.files_reparsed, 0, "nothing reparsed");
    assert_eq!(warm.rewrites_recomputed, 0, "nothing rewritten");
    assert!(warm_store.stats().hits > 0, "{:?}", warm_store.stats());
    assert_same_artifacts(&warm.result, &cold.result, "disk-warm vs cold");

    // An edit defeats the bundle (recompute once), then warmth returns.
    let (vfs, options) = project();
    let mut session = Session::with_store(
        options,
        vfs,
        Some(Arc::new(Store::open(&dir).expect("third open"))),
    );
    session
        .apply_edit(
            "main.cpp",
            "#include \"lib.hpp\"\nint use(K::Widget& w) { return w.grow(4); }\n".to_string(),
        )
        .expect("edit");
    let edited = session.rerun().expect("edited run");
    assert!(!edited.fully_cached(), "{}", edited.summary_line());
    let (mut vfs, options) = project();
    vfs.add_file(
        "main.cpp",
        "#include \"lib.hpp\"\nint use(K::Widget& w) { return w.grow(4); }\n",
    );
    let warm_again = Session::with_store(
        options,
        vfs,
        Some(Arc::new(Store::open(&dir).expect("fourth open"))),
    )
    .rerun()
    .expect("warm again");
    assert!(warm_again.fully_cached(), "{}", warm_again.summary_line());
    assert_same_artifacts(
        &warm_again.result,
        &edited.result,
        "edited warm vs edited cold",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_handles_hammer_one_cache_dir_without_torn_reads() {
    let dir = cache_dir("hammer");
    // Small capacity keeps eviction churning while both run.
    let cap = 64 * 1024;
    let mut handles = Vec::new();
    for worker in 0..2 {
        let dir = dir.clone();
        handles.push(std::thread::spawn(move || {
            let want = storeless_cold();
            // Each thread owns a private Store handle (as a separate
            // process would) on the shared dir.
            let store = Arc::new(Store::open_with_capacity(&dir, cap).expect("open shared store"));
            for round in 0..6 {
                let (mut vfs, options) = project();
                if (round + worker) % 2 == 0 {
                    vfs.add_file(
                        "main.cpp",
                        "#include \"lib.hpp\"\nint use(K::Widget& w) { return w.grow(4); }\n",
                    );
                }
                let run = Session::with_store(options, vfs, Some(Arc::clone(&store)))
                    .rerun()
                    .unwrap_or_else(|e| panic!("worker {worker} round {round}: {e}"));
                // Whatever mix of hits/misses the race produced, the
                // artifacts are never torn or stale.
                if (round + worker) % 2 != 0 {
                    assert_same_artifacts(
                        &run.result,
                        &want,
                        &format!("worker {worker} round {round}"),
                    );
                }
            }
            store.stats()
        }));
    }
    let mut bytes = 0;
    for handle in handles {
        let stats = handle.join().expect("worker panicked");
        assert_eq!(
            stats.corrupt, 0,
            "no torn reads under contention: {stats:?}"
        );
        bytes = stats.bytes;
    }
    assert!(
        bytes <= cap,
        "eviction kept the dir under {cap} bytes: {bytes}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
