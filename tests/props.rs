//! Property-based tests over the frontend and the substitution engine.

use proptest::prelude::*;
use yalla::cpp::lex::lex_str;
use yalla::cpp::parse::parse_str;
use yalla::cpp::pretty::print_tu;
use yalla::{Engine, Options, Vfs};

// ---------- generators -------------------------------------------------------

/// A C++-ish identifier.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| format!("id_{s}"))
}

/// A simple type spelling.
fn simple_type() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("int".to_string()),
        Just("double".to_string()),
        Just("bool".to_string()),
        ident().prop_map(|c| format!("Cls_{c}")),
        ident().prop_map(|c| format!("Cls_{c}*")),
        ident().prop_map(|c| format!("Cls_{c}&")),
    ]
}

/// A small, well-formed declaration.
fn decl() -> impl Strategy<Value = String> {
    prop_oneof![
        // variable
        (simple_type(), ident()).prop_map(|(t, n)| {
            let t = t.trim_end_matches(['&']).to_string(); // no ref globals
            format!("{t} {n};")
        }),
        // function declaration
        (simple_type(), ident(), simple_type(), ident())
            .prop_map(|(r, f, p, a)| format!("{r} fn_{f}({p} {a});")),
        // class with a field and method
        (ident(), simple_type(), ident()).prop_map(|(c, t, m)| {
            let t = t.trim_end_matches(['&', '*']).to_string();
            format!("class Cls_{c} {{\npublic:\n  {t} field_;\n  {t} get_{m}() const;\n}};")
        }),
        // function template with a body
        (ident(), ident()).prop_map(|(f, p)| format!(
            "template <typename T>\nT tfn_{f}(T {p}) {{ return {p}; }}"
        )),
        // enum
        (ident(), ident(), ident())
            .prop_map(|(e, a, b)| format!("enum class En_{e} {{ A_{a} = 1, B_{b} = 4, }};")),
        // namespace wrapping a class
        (ident(), ident()).prop_map(|(n, c)| format!("namespace ns_{n} {{ class Cls_{c}; }}")),
    ]
}

fn translation_unit() -> impl Strategy<Value = String> {
    prop::collection::vec(decl(), 1..12).prop_map(|ds| ds.join("\n"))
}

// ---------- properties ---------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The lexer never panics, whatever bytes it gets.
    #[test]
    fn lexer_never_panics(input in "\\PC*") {
        let _ = lex_str(&input);
    }

    /// The parser never panics on arbitrary token soup (it may error).
    #[test]
    fn parser_never_panics(input in "[a-zA-Z0-9_{}();:<>,&*+=\\-\\. \n]*") {
        let _ = parse_str(&input);
    }

    /// print → parse → print is a fixed point on generated declarations.
    #[test]
    fn pretty_print_round_trips(src in translation_unit()) {
        let tu = parse_str(&src).expect("generated decls parse");
        let once = print_tu(&tu);
        let tu2 = parse_str(&once).unwrap_or_else(|e| panic!("reparse failed: {e}\n{once}"));
        let twice = print_tu(&tu2);
        prop_assert_eq!(once, twice);
    }

    /// Lexing is insensitive to trailing whitespace/comments.
    #[test]
    fn lexer_ignores_trailing_trivia(src in translation_unit()) {
        let a = lex_str(&src).expect("lexes");
        let b = lex_str(&format!("{src}   // trailing comment\n/* block */  ")).expect("lexes");
        let strip = |mut v: Vec<yalla::cpp::lex::Token>| {
            v.pop();
            v.into_iter().map(|t| t.kind).collect::<Vec<_>>()
        };
        prop_assert_eq!(strip(a), strip(b));
    }

    /// Header Substitution, run on a generated library header plus a tiny
    /// user file, always produces output that passes its own verification
    /// (or reports a structured diagnostic — never panics, never emits
    /// invalid code silently).
    #[test]
    fn engine_output_always_verifies(decls in prop::collection::vec(decl(), 1..8), use_class in ident()) {
        let mut header = String::from("#pragma once\nnamespace lib {\n");
        for d in &decls {
            header.push_str(d);
            header.push('\n');
        }
        header.push_str(&format!("class Target_{use_class} {{ public: int size() const; }};\n"));
        header.push_str("}\n");

        let mut vfs = Vfs::new();
        vfs.add_file("lib.hpp", header);
        vfs.add_file(
            "main.cpp",
            format!(
                "#include \"lib.hpp\"\nint use_it(lib::Target_{use_class}& t) {{ return t.size(); }}\n"
            ),
        );
        let result = Engine::new(Options {
            header: "lib.hpp".into(),
            sources: vec!["main.cpp".into()],
            ..Options::default()
        })
        .run(&vfs)
        .expect("engine runs");
        prop_assert!(
            result.report.verification.passed(),
            "verification failed: {:?}\nheader:\n{}\nlightweight:\n{}",
            result.report.verification,
            vfs.text(vfs.lookup("lib.hpp").unwrap()),
            result.lightweight_header
        );
    }

    /// The simulator is monotone: adding lines never makes a compile faster.
    #[test]
    fn cost_model_is_monotone(lines in 1usize..200_000, extra in 1usize..50_000) {
        use yalla::sim::tu::TuWork;
        let profile = yalla::CompilerProfile::clang();
        let small = TuWork { lines, tokens: lines * 6, ..TuWork::default() };
        let large = TuWork { lines: lines + extra, tokens: (lines + extra) * 6, ..TuWork::default() };
        prop_assert!(profile.compile(&large).total_ms() > profile.compile(&small).total_ms());
    }
}
