//! Property-based tests over the frontend and the substitution engine.

use proptest::prelude::*;
use yalla::cpp::lex::lex_str;
use yalla::cpp::parse::parse_str;
use yalla::cpp::pretty::print_tu;
use yalla::{Engine, Options, Vfs};

// ---------- generators -------------------------------------------------------

/// A C++-ish identifier.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| format!("id_{s}"))
}

/// A simple type spelling.
fn simple_type() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("int".to_string()),
        Just("double".to_string()),
        Just("bool".to_string()),
        ident().prop_map(|c| format!("Cls_{c}")),
        ident().prop_map(|c| format!("Cls_{c}*")),
        ident().prop_map(|c| format!("Cls_{c}&")),
    ]
}

/// A small, well-formed declaration.
fn decl() -> impl Strategy<Value = String> {
    prop_oneof![
        // variable
        (simple_type(), ident()).prop_map(|(t, n)| {
            let t = t.trim_end_matches(['&']).to_string(); // no ref globals
            format!("{t} {n};")
        }),
        // function declaration
        (simple_type(), ident(), simple_type(), ident())
            .prop_map(|(r, f, p, a)| format!("{r} fn_{f}({p} {a});")),
        // class with a field and method
        (ident(), simple_type(), ident()).prop_map(|(c, t, m)| {
            let t = t.trim_end_matches(['&', '*']).to_string();
            format!("class Cls_{c} {{\npublic:\n  {t} field_;\n  {t} get_{m}() const;\n}};")
        }),
        // function template with a body
        (ident(), ident()).prop_map(|(f, p)| format!(
            "template <typename T>\nT tfn_{f}(T {p}) {{ return {p}; }}"
        )),
        // enum
        (ident(), ident(), ident())
            .prop_map(|(e, a, b)| format!("enum class En_{e} {{ A_{a} = 1, B_{b} = 4, }};")),
        // namespace wrapping a class
        (ident(), ident()).prop_map(|(n, c)| format!("namespace ns_{n} {{ class Cls_{c}; }}")),
    ]
}

fn translation_unit() -> impl Strategy<Value = String> {
    prop::collection::vec(decl(), 1..12).prop_map(|ds| ds.join("\n"))
}

// ---------- properties ---------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The lexer never panics, whatever bytes it gets.
    #[test]
    fn lexer_never_panics(input in "\\PC*") {
        let _ = lex_str(&input);
    }

    /// The parser never panics on arbitrary token soup (it may error).
    #[test]
    fn parser_never_panics(input in "[a-zA-Z0-9_{}();:<>,&*+=\\-\\. \n]*") {
        let _ = parse_str(&input);
    }

    /// print → parse → print is a fixed point on generated declarations.
    #[test]
    fn pretty_print_round_trips(src in translation_unit()) {
        let tu = parse_str(&src).expect("generated decls parse");
        let once = print_tu(&tu);
        let tu2 = parse_str(&once).unwrap_or_else(|e| panic!("reparse failed: {e}\n{once}"));
        let twice = print_tu(&tu2);
        prop_assert_eq!(once, twice);
    }

    /// Lexing is insensitive to trailing whitespace/comments.
    #[test]
    fn lexer_ignores_trailing_trivia(src in translation_unit()) {
        let a = lex_str(&src).expect("lexes");
        let b = lex_str(&format!("{src}   // trailing comment\n/* block */  ")).expect("lexes");
        let strip = |mut v: Vec<yalla::cpp::lex::Token>| {
            v.pop();
            v.into_iter().map(|t| t.kind).collect::<Vec<_>>()
        };
        prop_assert_eq!(strip(a), strip(b));
    }

    /// Header Substitution, run on a generated library header plus a tiny
    /// user file, always produces output that passes its own verification
    /// (or reports a structured diagnostic — never panics, never emits
    /// invalid code silently).
    #[test]
    fn engine_output_always_verifies(decls in prop::collection::vec(decl(), 1..8), use_class in ident()) {
        let mut header = String::from("#pragma once\nnamespace lib {\n");
        for d in &decls {
            header.push_str(d);
            header.push('\n');
        }
        header.push_str(&format!("class Target_{use_class} {{ public: int size() const; }};\n"));
        header.push_str("}\n");

        let mut vfs = Vfs::new();
        vfs.add_file("lib.hpp", header);
        vfs.add_file(
            "main.cpp",
            format!(
                "#include \"lib.hpp\"\nint use_it(lib::Target_{use_class}& t) {{ return t.size(); }}\n"
            ),
        );
        let result = Engine::new(Options {
            header: "lib.hpp".into(),
            sources: vec!["main.cpp".into()],
            ..Options::default()
        })
        .run(&vfs)
        .expect("engine runs");
        prop_assert!(
            result.report.verification.passed(),
            "verification failed: {:?}\nheader:\n{}\nlightweight:\n{}",
            result.report.verification,
            vfs.text(vfs.lookup("lib.hpp").unwrap()),
            result.lightweight_header
        );
    }

    /// The simulator is monotone: adding lines never makes a compile faster.
    #[test]
    fn cost_model_is_monotone(lines in 1usize..200_000, extra in 1usize..50_000) {
        use yalla::sim::tu::TuWork;
        let profile = yalla::CompilerProfile::clang();
        let small = TuWork { lines, tokens: lines * 6, ..TuWork::default() };
        let large = TuWork { lines: lines + extra, tokens: (lines + extra) * 6, ..TuWork::default() };
        prop_assert!(profile.compile(&large).total_ms() > profile.compile(&small).total_ms());
    }

    /// Content hashing changes iff the content changes: equal strings hash
    /// equal, and distinct strings hash distinct (FNV-1a collisions are
    /// astronomically unlikely over these generators — a failure here
    /// means the hasher lost input bytes).
    #[test]
    fn hash_changes_iff_content_changes(a in "[ -~\n]{0,64}", b in "[ -~\n]{0,64}") {
        use yalla::cpp::hash::hash_str;
        prop_assert_eq!(hash_str(&a) == hash_str(&b), a == b);
        // Appending anything changes the hash.
        prop_assert_ne!(hash_str(&format!("{a}x")), hash_str(&a));
    }

    /// A no-op `apply_edit` (identical text) preserves `hash_of`, and a
    /// real edit changes it.
    #[test]
    fn noop_edit_preserves_hash(text in "[ -~\n]{0,80}", extra in "[a-z]{1,8}") {
        let mut vfs = Vfs::new();
        vfs.add_file("f.hpp", text.clone());
        let before = vfs.hash_of("f.hpp").unwrap();
        vfs.apply_edit("f.hpp", text.clone()).unwrap();
        prop_assert_eq!(vfs.hash_of("f.hpp").unwrap(), before);
        vfs.apply_edit("f.hpp", format!("{text}{extra}")).unwrap();
        prop_assert_ne!(vfs.hash_of("f.hpp").unwrap(), before);
        // Reverting restores the original hash exactly.
        vfs.apply_edit("f.hpp", text).unwrap();
        prop_assert_eq!(vfs.hash_of("f.hpp").unwrap(), before);
    }

    /// Edit-then-revert restores the original content hash and re-hits
    /// the `ParseCache` — reverting an edit must not cost a reparse.
    #[test]
    fn edit_then_revert_rehits_parse_cache(marker in "[a-z]{1,8}") {
        use yalla::cpp::cache::{CacheLookup, ParseCache};
        let original = "#include \"lib.hpp\"\nint keep;\n".to_string();
        let mut vfs = Vfs::new();
        vfs.add_file("lib.hpp", "#pragma once\nnamespace l { class C; }\n");
        vfs.add_file("main.cpp", original.clone());
        let cache = ParseCache::new();

        let cold = cache.parse(&vfs, &[], "main.cpp").unwrap();
        prop_assert_eq!(cold.lookup, CacheLookup::Miss);
        let hash_before = vfs.hash_of("main.cpp").unwrap();

        vfs.apply_edit("main.cpp", format!("{original}int ed_{marker};\n")).unwrap();
        let edited = cache.parse(&vfs, &[], "main.cpp").unwrap();
        prop_assert_eq!(edited.lookup, CacheLookup::Invalidated);
        prop_assert_ne!(vfs.hash_of("main.cpp").unwrap(), hash_before);

        vfs.apply_edit("main.cpp", original).unwrap();
        prop_assert_eq!(vfs.hash_of("main.cpp").unwrap(), hash_before);
        let reverted = cache.parse(&vfs, &[], "main.cpp").unwrap();
        prop_assert_eq!(reverted.lookup, CacheLookup::Hit);
        prop_assert_eq!(reverted.closure_hash, cold.closure_hash);
    }
}
