//! End-to-end tests of the incremental session layer: cache invalidation
//! granularity, the §6 "no re-run needed" steady state, and the
//! zero-reparse guarantee of no-op reruns.

use std::sync::Mutex;
use std::time::Duration;

use proptest::prelude::*;
use yalla::core::{CacheLookup, Stage};
use yalla::{Options, Session, Vfs};

/// The global profiler's counters are process-wide; tests that assert on
/// counter deltas serialize behind this lock.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

/// The Figure 3 Kokkos-style fixture (same shape as the engine tests).
fn kokkos_vfs() -> Vfs {
    let mut vfs = Vfs::new();
    vfs.add_file(
        "Kokkos_Core.hpp",
        r#"
#pragma once
#include <Kokkos_Impl.hpp>
namespace Kokkos {
  class OpenMP;
  class LayoutRight {};
  template<class D, class L> class View {
  public:
    View();
    int& operator()(int i, int j);
    int extent(int d) const;
  };
  template<class S> class TeamPolicy {
  public:
    using member_type = Impl::HostThreadTeamMember<S>;
  };
  template<class M> Impl::TeamThreadRangeBoundariesStruct TeamThreadRange(M& m, int n);
  template<class R, class F> void parallel_for(R range, F functor);
  template<class T> T clamp_index(T v);
}
"#,
    );
    vfs.add_file(
        "Kokkos_Impl.hpp",
        r#"
#pragma once
namespace Kokkos { namespace Impl {
  struct TeamThreadRangeBoundariesStruct { int lo; int hi; };
  template<class P> class HostThreadTeamMember {
  public:
    int league_rank() const;
  };
} }
"#,
    );
    vfs.add_file(
        "functor.hpp",
        r#"#pragma once
#include <Kokkos_Core.hpp>
using sp_t = Kokkos::OpenMP;
using member_t = Kokkos::TeamPolicy<sp_t>::member_type;
struct add_y {
  int y;
  Kokkos::View<int**, Kokkos::LayoutRight> x;
  void operator()(member_t &m);
};
"#,
    );
    vfs.add_file(
        "kernel.cpp",
        r#"#include "functor.hpp"
void add_y::operator()(member_t &m) {
  int j = m.league_rank();
  Kokkos::parallel_for(
    Kokkos::TeamThreadRange(m, 5),
    [&](int i) { x(j, i) += y; });
}
"#,
    );
    vfs
}

fn kokkos_options() -> Options {
    Options {
        header: "Kokkos_Core.hpp".into(),
        sources: vec!["kernel.cpp".into(), "functor.hpp".into()],
        ..Options::default()
    }
}

fn kokkos_session() -> Session {
    Session::new(kokkos_options(), kokkos_vfs())
}

fn counter(name: &str) -> i64 {
    yalla::obs::global().metrics().counter(name).get()
}

/// Appends `extra` (plus a newline) to `path` in the session's file tree.
fn append(session: &mut Session, path: &str, extra: &str) {
    let id = session.vfs().lookup(path).expect("file exists");
    let new_text = format!("{}{extra}\n", session.vfs().text(id));
    session.apply_edit(path, new_text).expect("edit applies");
}

#[test]
fn noop_rerun_is_fully_cached_with_zero_reparses() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    use yalla::obs::metrics::names;

    let mut session = kokkos_session();
    let cold = session.rerun().unwrap();
    assert!(!cold.fully_cached());
    assert_eq!(cold.files_reparsed, 1);
    assert_eq!(cold.rewrites_recomputed, 2);

    // Zero re-parses, asserted through the observability counters: not a
    // single file may enter the preprocessor during a warm no-op rerun.
    let files_before = counter(names::FILES_PREPROCESSED);
    let parse_hits_before = counter(&names::stage_cache("parse", "hits"));
    let reparsed_before = counter(names::SESSION_TUS_REPARSED);
    let warm = session.rerun().unwrap();
    assert_eq!(
        counter(names::FILES_PREPROCESSED),
        files_before,
        "a warm no-op rerun must not preprocess any file"
    );
    assert_eq!(
        counter(&names::stage_cache("parse", "hits")),
        parse_hits_before + 1
    );
    assert_eq!(counter(names::SESSION_TUS_REPARSED), reparsed_before);

    assert!(warm.fully_cached());
    assert_eq!(warm.files_reparsed, 0);
    assert_eq!(warm.rewrites_recomputed, 0);
    assert_eq!(warm.rewrites_cached, 2);
    for stage in [
        Stage::Parse,
        Stage::Analyze,
        Stage::Plan,
        Stage::Emit,
        Stage::Rewrite,
        Stage::Verify,
    ] {
        assert_eq!(warm.outcome(stage), CacheLookup::Hit, "{stage}");
    }
    // Cached stages report zero duration, never a stale measurement.
    assert_eq!(warm.result.timings.total(), Duration::ZERO);
    assert!(cold.result.timings.total() > Duration::ZERO);

    // The artifacts are byte-identical to the cold run's.
    assert_eq!(
        cold.result.lightweight_header,
        warm.result.lightweight_header
    );
    assert_eq!(cold.result.wrappers_file, warm.result.wrappers_file);
    assert_eq!(cold.result.rewritten_sources, warm.result.rewritten_sources);
}

#[test]
fn editing_one_source_reparses_one_tu_and_keeps_the_plan() {
    let mut session = kokkos_session();
    let cold = session.rerun().unwrap();

    // A trailing comment after the lambda: the TU must re-parse, but the
    // used-symbol set (and every span the plan stores) is unchanged, so
    // plan and emit are skipped — the paper's §6 steady state.
    append(&mut session, "kernel.cpp", "// tweak");
    let run = session.rerun().unwrap();
    assert_eq!(run.files_reparsed, 1, "exactly one TU re-parses");
    assert_eq!(run.outcome(Stage::Parse), CacheLookup::Invalidated);
    assert_eq!(run.outcome(Stage::Analyze), CacheLookup::Invalidated);
    assert_eq!(run.outcome(Stage::Plan), CacheLookup::Hit);
    assert_eq!(run.outcome(Stage::Emit), CacheLookup::Hit);
    // Only the edited source's rewrite recomputes.
    assert_eq!(run.rewrites_recomputed, 1);
    assert_eq!(run.rewrites_cached, 1);
    assert_eq!(
        run.result.rewritten_sources["functor.hpp"],
        cold.result.rewritten_sources["functor.hpp"]
    );
    assert!(run.result.rewritten_sources["kernel.cpp"].contains("// tweak"));
    // The generated artifacts did not change.
    assert_eq!(
        run.result.lightweight_header,
        cold.result.lightweight_header
    );
    assert_eq!(run.result.wrappers_file, cold.result.wrappers_file);
}

#[test]
fn editing_a_header_dependency_invalidates_downstream() {
    let mut session = kokkos_session();
    session.rerun().unwrap();

    // Growing the *header* changes the include closure, so parse and
    // analyze recompute; the used set is unchanged, so the plan holds.
    append(
        &mut session,
        "Kokkos_Impl.hpp",
        "namespace Kokkos { namespace Impl { struct Fresh {}; } }",
    );
    let run = session.rerun().unwrap();
    assert_eq!(run.files_reparsed, 1);
    assert_eq!(run.outcome(Stage::Parse), CacheLookup::Invalidated);
    assert_eq!(run.outcome(Stage::Plan), CacheLookup::Hit);
}

#[test]
fn growing_the_used_set_recomputes_plan_and_emit() {
    let mut session = kokkos_session();
    let cold = session.rerun().unwrap();
    assert!(!cold.result.lightweight_header.contains("clamp_index"));

    // The edit starts using a header function no source used before: the
    // usage fingerprint changes and plan/emit must re-run (§6: this is
    // the one edit class that needs the tool again).
    append(
        &mut session,
        "kernel.cpp",
        "int probe() { return Kokkos::clamp_index(7); }",
    );
    let run = session.rerun().unwrap();
    assert_eq!(run.outcome(Stage::Plan), CacheLookup::Invalidated);
    assert_eq!(run.outcome(Stage::Emit), CacheLookup::Invalidated);
    assert!(
        run.result.lightweight_header.contains("clamp_index"),
        "{}",
        run.result.lightweight_header
    );
}

#[test]
fn pre_declared_symbols_absorb_growth_into_them() {
    // With `clamp_index` pre-declared (§6 extra symbols), the same growth
    // edit leaves the fingerprint stable: the symbol was already planned
    // for, so plan and emit stay cached.
    let options = Options {
        extra_symbols: vec!["Kokkos::clamp_index".into()],
        ..kokkos_options()
    };
    let mut session = Session::new(options, kokkos_vfs());
    let cold = session.rerun().unwrap();
    assert!(cold.result.lightweight_header.contains("clamp_index"));

    append(
        &mut session,
        "kernel.cpp",
        "int probe() { return Kokkos::clamp_index(7); }",
    );
    let run = session.rerun().unwrap();
    assert_eq!(run.outcome(Stage::Parse), CacheLookup::Invalidated);
    assert_eq!(run.outcome(Stage::Plan), CacheLookup::Hit);
    assert_eq!(run.outcome(Stage::Emit), CacheLookup::Hit);
    assert_eq!(
        run.result.lightweight_header,
        cold.result.lightweight_header
    );
    // `clamp_index` is forward declared in the (pre-built) lightweight
    // header, so the new call stays direct and needs no rewriting.
    assert!(
        run.result.rewritten_sources["kernel.cpp"].contains("Kokkos::clamp_index(7)"),
        "{}",
        run.result.rewritten_sources["kernel.cpp"]
    );
}

#[test]
fn all_missing_sources_are_reported_in_one_error() {
    let options = Options {
        sources: vec![
            "kernel.cpp".into(),
            "missing_a.cpp".into(),
            "functor.hpp".into(),
            "missing_b.cpp".into(),
        ],
        ..kokkos_options()
    };
    let err = Session::new(options, kokkos_vfs()).rerun().unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("missing_a.cpp") && msg.contains("missing_b.cpp"),
        "{msg}"
    );
}

#[test]
fn apply_edit_rejects_unknown_paths() {
    let mut session = kokkos_session();
    assert!(session.apply_edit("nope.cpp", "int x;").is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Identical reruns are always 100% cache hits, however many times.
    #[test]
    fn identical_reruns_always_hit(n in 1usize..4) {
        let mut session = kokkos_session();
        session.rerun().unwrap();
        for _ in 0..n {
            // `touch`: rewrite a file with identical content — the hash is
            // unchanged, so this must not invalidate anything.
            let id = session.vfs().lookup("kernel.cpp").unwrap();
            let same = session.vfs().text(id).to_string();
            session.apply_edit("kernel.cpp", same).unwrap();
            let run = session.rerun().unwrap();
            prop_assert!(run.fully_cached());
            prop_assert_eq!(run.files_reparsed, 0);
        }
    }

    /// Trailing-comment edits re-parse but never rebuild the plan: the
    /// used-symbol set is unchanged, whatever the comment says.
    #[test]
    fn trailing_comments_never_rebuild_the_plan(comments in prop::collection::vec("[ a-zA-Z0-9_+*()]{0,24}", 1..4)) {
        let mut session = kokkos_session();
        let cold = session.rerun().unwrap();
        for c in &comments {
            append(&mut session, "kernel.cpp", &format!("// {c}"));
            let run = session.rerun().unwrap();
            prop_assert_eq!(run.files_reparsed, 1);
            prop_assert_eq!(run.outcome(Stage::Plan), CacheLookup::Hit);
            prop_assert_eq!(run.outcome(Stage::Emit), CacheLookup::Hit);
            prop_assert_eq!(
                run.result.lightweight_header.clone(),
                cold.result.lightweight_header.clone()
            );
        }
    }
}
