//! End-to-end test of the `yalla` command-line tool on real files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_yalla")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("yalla-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("include")).expect("mkdir");
    dir
}

#[test]
fn cli_substitutes_a_header_on_disk() {
    let dir = scratch("basic");
    std::fs::write(
        dir.join("include/widgets.hpp"),
        "#pragma once\nnamespace w {\nclass Widget {\npublic:\n  int id() const;\n};\n}\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("app.cpp"),
        "#include <widgets.hpp>\nint describe(w::Widget& widget) { return widget.id(); }\n",
    )
    .unwrap();

    let out = Command::new(bin())
        .current_dir(&dir)
        .args([
            "--header",
            "widgets.hpp",
            "--include-dir",
            "include",
            "--out-dir",
            "out",
            "app.cpp",
        ])
        .output()
        .expect("cli runs");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    let lw = std::fs::read_to_string(dir.join("out/yalla_lightweight.hpp")).unwrap();
    assert!(lw.contains("class Widget;"), "{lw}");
    let app = std::fs::read_to_string(dir.join("out/app.cpp")).unwrap();
    assert!(app.contains("yalla_lightweight.hpp"), "{app}");
    assert!(app.contains("id(widget)"), "{app}");
    let wrappers = std::fs::read_to_string(dir.join("out/yalla_wrappers.cpp")).unwrap();
    assert!(wrappers.contains("#include <widgets.hpp>"), "{wrappers}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_rejects_missing_header_flag() {
    let out = Command::new(bin())
        .args(["app.cpp"])
        .output()
        .expect("cli runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--header"));
}

#[test]
fn cli_fails_cleanly_on_missing_source() {
    let dir = scratch("missing");
    let out = Command::new(bin())
        .current_dir(&dir)
        .args(["--header", "x.hpp", "nope.cpp"])
        .output()
        .expect("cli runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("nope.cpp"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_keep_predeclares_symbols() {
    let dir = scratch("keep");
    std::fs::write(
        dir.join("include/lib.hpp"),
        "#pragma once\nnamespace L {\nclass Used { public:\n  int id() const;\n};\nclass Spare;\n}\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("app.cpp"),
        "#include <lib.hpp>\nint f(L::Used& u) { return u.id(); }\n",
    )
    .unwrap();
    let out = Command::new(bin())
        .current_dir(&dir)
        .args([
            "--header",
            "lib.hpp",
            "--include-dir",
            "include",
            "--out-dir",
            "out",
            "--keep",
            "L::Spare",
            "app.cpp",
        ])
        .output()
        .expect("cli runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let lw = std::fs::read_to_string(dir.join("out/yalla_lightweight.hpp")).unwrap();
    assert!(lw.contains("class Spare;"), "{lw}");
    let _ = std::fs::remove_dir_all(&dir);
}
