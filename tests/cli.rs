//! End-to-end test of the `yalla` command-line tool on real files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_yalla")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("yalla-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("include")).expect("mkdir");
    dir
}

#[test]
fn cli_substitutes_a_header_on_disk() {
    let dir = scratch("basic");
    std::fs::write(
        dir.join("include/widgets.hpp"),
        "#pragma once\nnamespace w {\nclass Widget {\npublic:\n  int id() const;\n};\n}\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("app.cpp"),
        "#include <widgets.hpp>\nint describe(w::Widget& widget) { return widget.id(); }\n",
    )
    .unwrap();

    let out = Command::new(bin())
        .current_dir(&dir)
        .args([
            "--header",
            "widgets.hpp",
            "--include-dir",
            "include",
            "--out-dir",
            "out",
            "app.cpp",
        ])
        .output()
        .expect("cli runs");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    let lw = std::fs::read_to_string(dir.join("out/yalla_lightweight.hpp")).unwrap();
    assert!(lw.contains("class Widget;"), "{lw}");
    let app = std::fs::read_to_string(dir.join("out/app.cpp")).unwrap();
    assert!(app.contains("yalla_lightweight.hpp"), "{app}");
    assert!(app.contains("id(widget)"), "{app}");
    let wrappers = std::fs::read_to_string(dir.join("out/yalla_wrappers.cpp")).unwrap();
    assert!(wrappers.contains("#include <widgets.hpp>"), "{wrappers}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_self_profile_emits_nested_chrome_trace() {
    use yalla::obs::json::{self, JsonValue};

    let dir = scratch("profile");
    std::fs::write(
        dir.join("include/widgets.hpp"),
        "#pragma once\nnamespace w {\nclass Widget {\npublic:\n  int id() const;\n};\n}\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("app.cpp"),
        "#include <widgets.hpp>\nint describe(w::Widget& widget) { return widget.id(); }\n",
    )
    .unwrap();

    let out = Command::new(bin())
        .current_dir(&dir)
        .args([
            "--header",
            "widgets.hpp",
            "--include-dir",
            "include",
            "--out-dir",
            "out",
            "--self-profile",
            "prof.json",
            "--metrics",
            "app.cpp",
        ])
        .output()
        .expect("cli runs");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    // The trace parses as JSON and holds the whole engine pipeline.
    let text = std::fs::read_to_string(dir.join("prof.json")).unwrap();
    let parsed = json::parse(&text).expect("self-profile is valid JSON");
    let events = parsed.as_array().expect("array of events");
    let span_names: Vec<(&str, f64, f64)> = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .map(|e| {
            (
                e.get("name").and_then(JsonValue::as_str).unwrap(),
                e.get("ts").and_then(JsonValue::as_f64).unwrap(),
                e.get("dur").and_then(JsonValue::as_f64).unwrap(),
            )
        })
        .collect();
    for phase in [
        "preprocess",
        "parse",
        "analyze",
        "plan",
        "emit",
        "rewrite",
        "verify",
    ] {
        assert!(
            span_names.iter().any(|(n, _, _)| *n == phase),
            "missing span `{phase}` in {span_names:?}"
        );
    }
    // Nesting: every phase span lies inside the enclosing `substitute` span.
    let (_, sub_ts, sub_dur) = *span_names
        .iter()
        .find(|(n, _, _)| *n == "substitute")
        .expect("run span present");
    for phase in ["parse", "analyze", "plan", "emit", "rewrite"] {
        let (_, ts, dur) = *span_names.iter().find(|(n, _, _)| *n == phase).unwrap();
        assert!(
            sub_ts <= ts && ts + dur <= sub_ts + sub_dur,
            "`{phase}` not nested in `substitute`"
        );
    }
    // Counter events made it too.
    assert!(
        events.iter().any(|e| {
            e.get("ph").and_then(JsonValue::as_str) == Some("C")
                && e.get("name").and_then(JsonValue::as_str) == Some("pp.files_preprocessed")
        }),
        "no pp.files_preprocessed counter event"
    );

    // --metrics prints the summary tables on stdout.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("metrics:"), "{stdout}");
    assert!(stdout.contains("pp.files_preprocessed"), "{stdout}");
    assert!(stdout.contains("engine.runs"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_without_profile_flag_writes_no_trace() {
    let dir = scratch("noprofile");
    std::fs::write(dir.join("include/lib.hpp"), "#pragma once\nclass A;\n").unwrap();
    std::fs::write(dir.join("app.cpp"), "#include <lib.hpp>\nint x;\n").unwrap();
    let out = Command::new(bin())
        .current_dir(&dir)
        .args([
            "--header",
            "lib.hpp",
            "--include-dir",
            "include",
            "--out-dir",
            "out",
            "app.cpp",
        ])
        .output()
        .expect("cli runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!dir.join("prof.json").exists());
    assert!(!String::from_utf8_lossy(&out.stdout).contains("metrics:"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_rejects_missing_header_flag() {
    let out = Command::new(bin())
        .args(["app.cpp"])
        .output()
        .expect("cli runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--header"));
}

#[test]
fn cli_fails_cleanly_on_missing_source() {
    let dir = scratch("missing");
    let out = Command::new(bin())
        .current_dir(&dir)
        .args(["--header", "x.hpp", "nope.cpp"])
        .output()
        .expect("cli runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("nope.cpp"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_iterate_replays_edits_through_one_session() {
    let dir = scratch("iterate");
    std::fs::write(
        dir.join("include/widgets.hpp"),
        "#pragma once\nnamespace w {\nclass Widget {\npublic:\n  int id() const;\n};\n}\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("app.cpp"),
        "#include <widgets.hpp>\nint describe(w::Widget& widget) { return widget.id(); }\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("app_v2.cpp"),
        "#include <widgets.hpp>\nint describe(w::Widget& widget) { return widget.id() + 1; }\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("edits.txt"),
        "# warm no-op rerun\nrerun\n\
         # body edit from disk, then rerun\nedit app.cpp app_v2.cpp\nrerun\n\
         # append a trailing comment, then rerun\nappend app.cpp // done\nrerun\n\
         touch app.cpp\nrerun\n",
    )
    .unwrap();

    let out = Command::new(bin())
        .current_dir(&dir)
        .args([
            "--header",
            "widgets.hpp",
            "--include-dir",
            "include",
            "--out-dir",
            "out",
            "--iterate",
            "edits.txt",
            "--metrics",
            "app.cpp",
        ])
        .output()
        .expect("cli runs");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The cold run misses; the immediate rerun and the touch rerun hit.
    assert!(
        stdout.contains("iteration 0 (cold): parse=miss"),
        "{stdout}"
    );
    assert!(stdout.contains("iteration 1: parse=hit"), "{stdout}");
    assert!(stdout.contains("iteration 2: parse=inval"), "{stdout}");
    assert!(stdout.contains("iteration 4: parse=hit"), "{stdout}");
    // Body edits never rebuild the plan (§6 steady state).
    assert!(!stdout.contains("plan=inval"), "{stdout}");
    // --metrics surfaces the per-stage cache counters.
    assert!(stdout.contains("cache.parse.hits"), "{stdout}");
    assert!(stdout.contains("session.reruns"), "{stdout}");
    // The artifacts on disk come from the *last* rerun.
    let app = std::fs::read_to_string(dir.join("out/app.cpp")).unwrap();
    assert!(app.contains("id(widget) + 1"), "{app}");
    assert!(app.contains("// done"), "{app}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_keep_predeclares_symbols() {
    let dir = scratch("keep");
    std::fs::write(
        dir.join("include/lib.hpp"),
        "#pragma once\nnamespace L {\nclass Used { public:\n  int id() const;\n};\nclass Spare;\n}\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("app.cpp"),
        "#include <lib.hpp>\nint f(L::Used& u) { return u.id(); }\n",
    )
    .unwrap();
    let out = Command::new(bin())
        .current_dir(&dir)
        .args([
            "--header",
            "lib.hpp",
            "--include-dir",
            "include",
            "--out-dir",
            "out",
            "--keep",
            "L::Spare",
            "app.cpp",
        ])
        .output()
        .expect("cli runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lw = std::fs::read_to_string(dir.join("out/yalla_lightweight.hpp")).unwrap();
    assert!(lw.contains("class Spare;"), "{lw}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_event_log_writes_joinable_jsonl() {
    use yalla::obs::json;

    let dir = scratch("eventlog");
    std::fs::write(
        dir.join("include/lib.hpp"),
        "#pragma once\nnamespace E {\nclass Thing {\npublic:\n  int id() const;\n};\n}\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("app.cpp"),
        "#include <lib.hpp>\nint f(E::Thing& t) { return t.id(); }\n",
    )
    .unwrap();
    let out = Command::new(bin())
        .current_dir(&dir)
        .args([
            "--header",
            "lib.hpp",
            "--include-dir",
            "include",
            "--out-dir",
            "out",
            "--event-log",
            "events.jsonl",
            "app.cpp",
        ])
        .output()
        .expect("cli runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let log = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
    let mut stage_lines = 0usize;
    for line in log.lines() {
        let v = json::parse(line).expect("every event-log line is valid JSON");
        assert!(v.get("ts_us").is_some(), "missing ts_us: {line}");
        assert!(v.get("req").is_some(), "missing req: {line}");
        let kind = v.get("kind").and_then(|k| k.as_str()).expect("kind");
        if kind == "stage" {
            stage_lines += 1;
            assert!(v.get("dur_us").is_some(), "stage without dur_us: {line}");
        }
    }
    assert!(stage_lines > 0, "expected stage events, got:\n{log}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `yalla stat <socket>` scrapes a live daemon: the output is Prometheus
/// text exposition, and a second scrape includes the latency summary for
/// the first scrape's own `metrics` request.
#[cfg(unix)]
#[test]
fn cli_stat_scrapes_a_running_daemon() {
    let dir = scratch("stat");
    let socket = dir.join("yalla.sock");
    let socket_str = socket.to_str().unwrap().to_string();
    let mut daemon = Command::new(bin())
        .args(["serve", "--socket", &socket_str, "--workers", "1"])
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let mut ready = false;
    for _ in 0..500 {
        if socket.exists() {
            ready = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(ready, "daemon never bound {}", socket.display());

    let first = Command::new(bin())
        .args(["stat", &socket_str])
        .output()
        .expect("stat runs");
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let text = String::from_utf8_lossy(&first.stdout);
    assert!(text.contains("# TYPE"), "{text}");
    assert!(text.contains("yalla_serve_requests "), "{text}");

    let second = Command::new(bin())
        .args(["stat", &socket_str])
        .output()
        .expect("stat runs twice");
    let text = String::from_utf8_lossy(&second.stdout);
    assert!(
        text.contains("yalla_latency_serve_metrics{quantile=\"0.99\"}"),
        "{text}"
    );

    use std::io::Write;
    let mut stream = std::os::unix::net::UnixStream::connect(&socket).unwrap();
    stream.write_all(b"{\"op\": \"shutdown\"}\n").unwrap();
    let status = daemon.wait().expect("daemon exits");
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&dir);
}
