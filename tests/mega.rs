//! Mega-corpus integration suite: the generated 1k/4k-file trees driven
//! through the real engine.
//!
//! Three contracts on top of the generator's own property tests:
//!
//! * **Worker determinism** — a cold mega-1k run produces byte-identical
//!   artifacts at 1, 2, and 8 workers (every TU parsing as its own DAG
//!   node), and a fresh session against the cache dir a cold run
//!   populated is disk-warm with the same bytes.
//! * **Eviction correctness** — mega-4k under a deliberately tiny
//!   `YALLA_MEM_BUDGET` (run in a child process so the process-wide
//!   budget cannot leak into threaded sibling tests) is byte-identical
//!   to the unbounded run, with `cache.evictions > 0`.
//! * **Spill round-trip** — every record the tiny-budget run spilled to
//!   the store warms a fresh session to the same bytes, and under the
//!   store's write-time sabotage modes the rerun still matches (corrupt
//!   spills degrade to recompute, never to wrong artifacts).

use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

use yalla::exec::Executor;
use yalla::fuzz::{MegaConfig, MegaProject};
use yalla::store::Store;
use yalla::{Session, SessionRun};

fn fingerprint(run: &SessionRun) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(run.result.lightweight_header.as_bytes());
    eat(run.result.wrappers_file.as_bytes());
    for (path, text) in &run.result.rewritten_sources {
        eat(path.as_bytes());
        eat(text.as_bytes());
    }
    h
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("yalla-mega-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn mega_1k_is_byte_identical_across_worker_counts_and_disk_warm() {
    let cfg = MegaConfig::preset("mega-1k").unwrap();
    let project = MegaProject::generate(&cfg);
    let (vfs, options) = project.render();
    let cache_dir = temp_dir("workers");

    let mut baseline: Option<u64> = None;
    for workers in [1usize, 2, 8] {
        let exec = Executor::new(workers);
        let store = Arc::new(Store::open(&cache_dir).expect("open store"));
        let mut session = Session::with_store(options.clone(), vfs.clone(), Some(store));
        let run = session
            .rerun_on(&exec)
            .unwrap_or_else(|e| panic!("{workers} workers: {e}"));
        assert!(run.result.report.verification.passed(), "{workers} workers");
        let hash = fingerprint(&run);
        match baseline {
            None => {
                // First run is genuinely cold: every TU parses.
                assert_eq!(run.files_reparsed, project.tus.len());
                baseline = Some(hash);
            }
            Some(base) => {
                assert_eq!(base, hash, "{workers} workers diverged from baseline");
                // Later sessions share the first run's cache dir: fresh
                // process state, disk-warm bytes, nothing recomputed.
                assert!(run.fully_cached(), "{workers} workers not disk-warm");
                assert_eq!(run.files_reparsed, 0);
            }
        }
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// What the tiny-budget child leg writes back to the parent.
const EVICT_OUT_ENV: &str = "YALLA_MEGA_EVICT_OUT";
const EVICT_STORE_ENV: &str = "YALLA_MEGA_EVICT_STORE";

#[test]
fn mega_4k_tiny_budget_is_invisible_to_artifacts_and_spills_round_trip() {
    // Child leg: YALLA_MEM_BUDGET is already set by the parent, so this
    // whole process runs under the tiny budget (the same path
    // `--mem-budget`/the env var give real users). Runs the cold pass,
    // then a fresh session over the same store to prove spilled records
    // round-trip, and reports fingerprints + eviction count.
    if let Ok(out) = std::env::var(EVICT_OUT_ENV) {
        let cfg = MegaConfig::preset("mega-4k").unwrap();
        let project = MegaProject::generate(&cfg);
        let (vfs, options) = project.render();
        let store_dir = PathBuf::from(std::env::var(EVICT_STORE_ENV).unwrap());

        let store = Arc::new(Store::open(&store_dir).expect("open store"));
        let mut session = Session::with_store(options.clone(), vfs.clone(), Some(store));
        let cold = session.rerun().expect("tiny-budget cold run");
        assert!(cold.result.report.verification.passed());
        let evictions = yalla::obs::global()
            .metrics()
            .counter(yalla::obs::metrics::names::CACHE_EVICTIONS)
            .get();
        drop(session);

        let store = Arc::new(Store::open(&store_dir).expect("reopen store"));
        let mut fresh = Session::with_store(options, vfs, Some(store));
        let warm = fresh.rerun().expect("disk-warm rerun");

        std::fs::write(
            out,
            format!(
                "{:016x} {:016x} {evictions} {}",
                fingerprint(&cold),
                fingerprint(&warm),
                warm.files_reparsed
            ),
        )
        .unwrap();
        return;
    }

    // Parent: unbounded baseline in this process (no budget env set).
    let cfg = MegaConfig::preset("mega-4k").unwrap();
    let project = MegaProject::generate(&cfg);
    let (vfs, options) = project.render();
    let mut session = Session::with_store(options, vfs, None);
    let unbounded = session.rerun().expect("unbounded run");
    let baseline = fingerprint(&unbounded);

    let exe = std::env::current_exe().unwrap();
    let scratch = temp_dir("evict");
    std::fs::create_dir_all(&scratch).unwrap();

    // Two child passes: a clean store, then every spill written through
    // each sabotage mode (torn / bit-rot / missing records must degrade
    // to recompute, never to divergent artifacts).
    for mode in ["", "truncate", "flip-byte", "partial-write", "enoent"] {
        let tag = if mode.is_empty() { "clean" } else { mode };
        let out = scratch.join(format!("report-{tag}"));
        let store_dir = scratch.join(format!("store-{tag}"));
        let mut cmd = Command::new(&exe);
        cmd.args([
            "mega_4k_tiny_budget_is_invisible_to_artifacts_and_spills_round_trip",
            "--exact",
        ])
        .env(EVICT_OUT_ENV, &out)
        .env(EVICT_STORE_ENV, &store_dir)
        .env("YALLA_MEM_BUDGET", "256k");
        if !mode.is_empty() {
            cmd.env("YALLA_STORE_SABOTAGE", mode);
        }
        let output = cmd.output().expect("spawn child");
        assert!(
            output.status.success(),
            "{tag} child failed:\n{}",
            String::from_utf8_lossy(&output.stdout)
        );
        let report = std::fs::read_to_string(&out).expect("child report");
        let mut parts = report.split_whitespace();
        let cold_hash = u64::from_str_radix(parts.next().unwrap(), 16).unwrap();
        let warm_hash = u64::from_str_radix(parts.next().unwrap(), 16).unwrap();
        let evictions: i64 = parts.next().unwrap().parse().unwrap();
        let reparsed: usize = parts.next().unwrap().parse().unwrap();

        assert_eq!(
            cold_hash, baseline,
            "{tag}: tiny-budget artifacts diverged from unbounded run"
        );
        assert_eq!(
            warm_hash, baseline,
            "{tag}: post-spill rerun diverged from unbounded run"
        );
        assert!(evictions > 0, "{tag}: tiny budget evicted nothing");
        if mode.is_empty() {
            // Clean store: the spilled records must actually warm the
            // fresh session — nothing reparses.
            assert_eq!(reparsed, 0, "clean: spilled records did not round-trip");
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
}
