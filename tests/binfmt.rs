//! Format-stability gates for the binary artifact store (DESIGN.md §13).
//!
//! Three layers of pinning:
//!
//! 1. A **checked-in golden record** (`tests/goldens/format/`) must keep
//!    decoding under the current `FORMAT_VERSION`, and re-encoding its
//!    content must reproduce the checked-in bytes exactly. Any change to
//!    the record framing, module container, or varint coding fails here
//!    until `FORMAT_VERSION` is bumped and the golden regenerated
//!    (`UPDATE_GOLDENS=1 cargo test --test binfmt`).
//! 2. **Encode → decode → encode byte stability** across every corpus
//!    subject's run bundle: the format has one canonical serialization.
//! 3. A **disk-warm determinism run** must serve its artifacts through
//!    the zero-copy read path (`store.zero_copy_hits` > 0) and produce
//!    bytes identical to the cold run.

use std::path::PathBuf;
use std::sync::Arc;

use yalla::core::persist::{decode_run, encode_run};
use yalla::corpus::all_subjects;
use yalla::obs::metrics::names::STORE_ZERO_COPY_HITS;
use yalla::store::module::{ModuleBuilder, ModuleReader, PartitionBuilder};
use yalla::store::{record, Store, FORMAT_VERSION};
use yalla::{Engine, Options, Session, Vfs};

const GOLDEN_NS: &str = "golden";
const GOLDEN_KEY: u64 = 0x59_41_4C_4C_41; // "YALLA"
const GOLDEN_KIND: u8 = 9;
const PART_DEPS: u8 = 1;
const PART_META: u8 = 2;

/// A hand-built module with every format feature: interned strings,
/// a fixed-layout partition, and a varint-stream partition. Deliberately
/// *not* engine output — the golden must only change when the format
/// changes, never when engine behavior does.
fn golden_payload() -> Vec<u8> {
    let mut m = ModuleBuilder::new(GOLDEN_KIND);
    let hdr = m.intern("include/widget.hpp");
    let src = m.intern("src/main.cpp");
    assert_eq!(m.intern("include/widget.hpp"), hdr, "interning dedups");
    let mut deps = PartitionBuilder::fixed(PART_DEPS, 12);
    for (s, h) in [(hdr, 0xDEAD_BEEF_u64), (src, 0xCAFE_F00D_u64)] {
        let row = deps.row();
        row.put_u32(s.0);
        row.put_u64(h);
    }
    m.push(deps);
    let mut meta = PartitionBuilder::var(PART_META);
    let w = meta.row();
    w.put_varint(42);
    w.put_vstr("format golden — regenerate only on a FORMAT_VERSION bump");
    m.push(meta);
    m.finish()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
        .join("format")
        .join(format!("record_v{FORMAT_VERSION}.bin"))
}

#[test]
fn checked_in_golden_record_decodes_under_current_format_version() {
    let path = golden_path();
    let fresh = record::encode(GOLDEN_NS, GOLDEN_KEY, &golden_payload());
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir goldens/format");
        std::fs::write(&path, &fresh).expect("write golden record");
        return;
    }
    let pinned = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden record {} ({e}); after a deliberate FORMAT_VERSION \
             bump run UPDATE_GOLDENS=1 cargo test --test binfmt",
            path.display()
        )
    });
    assert_eq!(
        fresh, pinned,
        "encoder output diverged from the checked-in v{FORMAT_VERSION} golden: \
         bump FORMAT_VERSION and regenerate (UPDATE_GOLDENS=1 cargo test --test binfmt)"
    );

    // The pinned bytes must decode end to end: record framing, then the
    // module container, then every partition and string.
    let payload = record::decode_view(&pinned, GOLDEN_NS, GOLDEN_KEY)
        .unwrap_or_else(|e| panic!("golden record rejected by current decoder: {e:?}"));
    let m = ModuleReader::parse(payload).expect("golden module parses");
    assert_eq!(m.kind(), GOLDEN_KIND);
    assert_eq!(m.str_count(), 2);
    let deps = m.part(PART_DEPS).expect("deps partition");
    assert_eq!(deps.rows(), 2);
    let row = deps.row(0).unwrap();
    assert_eq!(m.get(row.str_at(0).unwrap()).unwrap(), "include/widget.hpp");
    assert_eq!(row.u64_at(4).unwrap(), 0xDEAD_BEEF);
    let row = deps.row(1).unwrap();
    assert_eq!(m.get(row.str_at(0).unwrap()).unwrap(), "src/main.cpp");
    assert_eq!(row.u64_at(4).unwrap(), 0xCAFE_F00D);
    let mut r = m.part(PART_META).expect("meta partition").reader();
    assert_eq!(r.get_varint().unwrap(), 42);
    assert_eq!(
        r.get_vstr().unwrap(),
        "format golden — regenerate only on a FORMAT_VERSION bump"
    );
}

#[test]
fn run_bundles_reencode_byte_identically_across_the_corpus() {
    let subjects = all_subjects();
    assert!(subjects.len() >= 18, "corpus shrank to {}", subjects.len());
    for subject in subjects {
        let options = Options {
            header: subject.header.clone(),
            sources: subject.sources.clone(),
            ..Options::default()
        };
        let result = Engine::new(options)
            .run(&subject.vfs)
            .unwrap_or_else(|e| panic!("{}: engine: {e}", subject.name));
        let bytes = encode_run(&result)
            .unwrap_or_else(|| panic!("{}: clean run must be persistable", subject.name));
        ModuleReader::parse(&bytes)
            .unwrap_or_else(|e| panic!("{}: bundle is not a valid module: {e:?}", subject.name));
        let decoded = decode_run(&bytes)
            .unwrap_or_else(|| panic!("{}: bundle failed to decode", subject.name));
        // Decoded artifacts are the originals, byte for byte.
        assert_eq!(decoded.lightweight_header, result.lightweight_header);
        assert_eq!(decoded.wrappers_file, result.wrappers_file);
        assert_eq!(decoded.rewritten_sources, result.rewritten_sources);
        // And the format has one canonical serialization.
        let reencoded = encode_run(&decoded)
            .unwrap_or_else(|| panic!("{}: decoded run must re-encode", subject.name));
        assert_eq!(
            reencoded, bytes,
            "{}: encode(decode(encode(run))) is not byte-identical",
            subject.name
        );
    }
}

#[test]
fn disk_warm_run_is_served_zero_copy_with_identical_artifacts() {
    let dir = std::env::temp_dir().join(format!("yalla-binfmt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut vfs = Vfs::new();
    vfs.add_file(
        "lib.hpp",
        "namespace K { class Widget { public: int id() const; int grow(int k) const; }; }\n",
    );
    vfs.add_file(
        "main.cpp",
        "#include \"lib.hpp\"\nint use(K::Widget& w) { return w.id() + w.grow(3); }\n",
    );
    let options = Options {
        header: "lib.hpp".into(),
        sources: vec!["main.cpp".into()],
        ..Options::default()
    };

    let cold = Session::with_store(
        options.clone(),
        vfs.clone(),
        Some(Arc::new(Store::open(&dir).expect("open store"))),
    )
    .rerun()
    .expect("cold run");

    let before = yalla::obs::global()
        .metrics()
        .counter(STORE_ZERO_COPY_HITS)
        .get();
    // A fresh handle on the same dir stands in for a restarted process.
    let warm = Session::with_store(
        options,
        vfs,
        Some(Arc::new(Store::open(&dir).expect("reopen store"))),
    )
    .rerun()
    .expect("warm run");
    let after = yalla::obs::global()
        .metrics()
        .counter(STORE_ZERO_COPY_HITS)
        .get();

    assert!(warm.fully_cached(), "{}", warm.summary_line());
    assert!(
        after > before,
        "disk-warm reads must go through the zero-copy path \
         (store.zero_copy_hits {before} -> {after})"
    );
    assert_eq!(
        warm.result.lightweight_header,
        cold.result.lightweight_header
    );
    assert_eq!(warm.result.wrappers_file, cold.result.wrappers_file);
    assert_eq!(warm.result.rewritten_sources, cold.result.rewritten_sources);
    let _ = std::fs::remove_dir_all(&dir);
}
