#!/usr/bin/env python3
"""End-to-end smoke test for the `yalla serve` daemon.

Starts the daemon on a Unix socket, drives one full client cycle
(open -> cold rerun -> warm rerun -> artifact read -> shutdown) with the
line-delimited JSON protocol, and checks the daemon exits cleanly. Run
under a hard timeout (CI uses `timeout 60`); any hang is a failure.
"""

import json
import os
import socket
import subprocess
import sys
import time

SOCKET = os.environ.get("YALLA_SMOKE_SOCKET", "/tmp/yalla-smoke.sock")
BINARY = os.environ.get("YALLA_BINARY", "./target/release/yalla")

HEADER = (
    "namespace ci {\n"
    "class Probe {\n"
    " public:\n"
    "  int id() const;\n"
    "};\n"
    "}  // namespace ci\n"
)
SOURCE = '#include "ci.hpp"\nint f(ci::Probe& p) { return p.id(); }\n'


def main():
    daemon = subprocess.Popen([BINARY, "serve", "--socket", SOCKET, "--workers", "2"])
    try:
        s = socket.socket(socket.AF_UNIX)
        for _ in range(100):
            try:
                s.connect(SOCKET)
                break
            except OSError:
                time.sleep(0.1)
        else:
            raise SystemExit("could not connect to the daemon")
        f = s.makefile("rw")

        def req(obj):
            f.write(json.dumps(obj) + "\n")
            f.flush()
            return json.loads(f.readline())

        r = req(
            {
                "op": "open",
                "project": "ci",
                "header": "ci.hpp",
                "sources": ["main.cpp"],
                "files": {"ci.hpp": HEADER, "main.cpp": SOURCE},
            }
        )
        assert r["ok"], r
        r = req({"op": "rerun", "project": "ci"})
        assert r["ok"] and not r["fully_cached"], r
        r = req({"op": "rerun", "project": "ci"})
        assert r["ok"] and r["fully_cached"], r
        r = req({"op": "get", "project": "ci", "artifact": "lightweight"})
        assert r["ok"] and "class Probe;" in r["text"], r
        r = req({"op": "shutdown"})
        assert r["ok"], r
        assert daemon.wait(timeout=30) == 0, "daemon did not exit cleanly"
    finally:
        if daemon.poll() is None:
            daemon.kill()
    print("serve smoke OK")


if __name__ == "__main__":
    sys.exit(main())
