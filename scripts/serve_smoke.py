#!/usr/bin/env python3
"""End-to-end smoke test for the `yalla serve` daemon.

Phase 1 starts the daemon on a Unix socket, drives one full client cycle
(open -> cold rerun -> warm rerun -> artifact read -> shutdown) with the
line-delimited JSON protocol, and checks the daemon exits cleanly.

Phase 1 also exercises the telemetry surface: every response must carry
a strictly increasing daemon-assigned request id, `status` must report
uptime, per-class request totals, and the store hit ratio, and the
`metrics` op must return Prometheus text exposition including the
latency summary for the reruns the cycle just ran.

Phase 2 proves crash-safe warm restart: a daemon started with
`--cache-dir` is SIGKILLed mid-session, a second daemon generation is
started on the same cache dir, and it must rebuild the warm shard pool
from disk — project addressable by name before any `open`, first rerun
fully cached, artifacts byte-identical to what the killed daemon served.

Run under a hard timeout (CI uses `timeout 60`); any hang is a failure.
"""

import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import time

SOCKET = os.environ.get("YALLA_SMOKE_SOCKET", "/tmp/yalla-smoke.sock")
BINARY = os.environ.get("YALLA_BINARY", "./target/release/yalla")

HEADER = (
    "namespace ci {\n"
    "class Probe {\n"
    " public:\n"
    "  int id() const;\n"
    "};\n"
    "}  // namespace ci\n"
)
SOURCE = '#include "ci.hpp"\nint f(ci::Probe& p) { return p.id(); }\n'
EDITED_SOURCE = SOURCE + "int g(ci::Probe& p) { return p.id() + 1; }\n"


def connect(sock_path):
    s = socket.socket(socket.AF_UNIX)
    for _ in range(100):
        try:
            s.connect(sock_path)
            break
        except OSError:
            time.sleep(0.1)
    else:
        raise SystemExit("could not connect to the daemon")
    f = s.makefile("rw")
    last_req = [0]

    def req(obj):
        f.write(json.dumps(obj) + "\n")
        f.flush()
        r = json.loads(f.readline())
        # Every response is stamped with the daemon-assigned request id,
        # strictly increasing over the daemon's lifetime.
        assert r.get("req", 0) > last_req[0], "request ids must increase: %r" % r
        last_req[0] = r["req"]
        return r

    return req


def poll_status(req, predicate, what, deadline_s=30):
    """Polls `status` until `predicate(response)` holds.

    The daemon answers `status` from the shard snapshot without waiting
    on any in-flight pipeline pass, so polling is cheap and converges as
    soon as the daemon publishes the state under test — unlike a fixed
    sleep, which is both slow on fast machines and flaky on loaded CI
    runners.
    """
    deadline = time.monotonic() + deadline_s
    while True:
        r = req({"op": "status"})
        assert r["ok"], r
        if predicate(r):
            return r
        if time.monotonic() > deadline:
            raise SystemExit("timed out waiting for %s; last status: %r" % (what, r))
        time.sleep(0.05)


def open_request():
    return {
        "op": "open",
        "project": "ci",
        "header": "ci.hpp",
        "sources": ["main.cpp"],
        "files": {"ci.hpp": HEADER, "main.cpp": SOURCE},
    }


def basic_cycle():
    daemon = subprocess.Popen([BINARY, "serve", "--socket", SOCKET, "--workers", "2"])
    try:
        req = connect(SOCKET)
        r = req(open_request())
        assert r["ok"], r
        r = req({"op": "rerun", "project": "ci"})
        assert r["ok"] and not r["fully_cached"], r
        r = req({"op": "rerun", "project": "ci"})
        assert r["ok"] and r["fully_cached"], r
        r = req({"op": "get", "project": "ci", "artifact": "lightweight"})
        assert r["ok"] and "class Probe;" in r["text"], r
        r = req({"op": "status"})
        assert r["ok"], r
        assert r["uptime_us"] >= 0, r
        assert "store_lookups" in r, r
        assert 0.0 <= r["store_hit_ratio"] <= 1.0, r
        by_class = r["requests_by_class"]
        assert by_class["open"] >= 1 and by_class["rerun"] >= 2, r
        shard = r["shards"][0]
        assert shard["cancelled"] == 0, "no rerun was superseded in this cycle: %r" % r
        assert shard["generation"] == 0, "no edit was applied in this cycle: %r" % r
        r = req({"op": "metrics"})
        assert r["ok"], r
        text = r["text"]
        assert "# TYPE" in text and "yalla_serve_requests " in text, text
        assert 'yalla_latency_serve_rerun{quantile="0.99"}' in text, text
        r = req({"op": "shutdown"})
        assert r["ok"], r
        assert daemon.wait(timeout=30) == 0, "daemon did not exit cleanly"
    finally:
        if daemon.poll() is None:
            daemon.kill()
    print("serve smoke OK")


def kill_and_restart():
    cache_dir = tempfile.mkdtemp(prefix="yalla-smoke-store-")
    sock1 = SOCKET + ".gen1"
    sock2 = SOCKET + ".gen2"
    gen2 = None
    gen1 = subprocess.Popen(
        [BINARY, "serve", "--socket", sock1, "--cache-dir", cache_dir, "--workers", "2"]
    )
    try:
        req = connect(sock1)
        r = req(open_request())
        assert r["ok"], r
        r = req({"op": "rerun", "project": "ci"})
        assert r["ok"], r
        r = req({"op": "edit", "project": "ci", "path": "main.cpp", "text": EDITED_SOURCE})
        assert r["ok"], r
        r = req({"op": "rerun", "project": "ci"})
        assert r["ok"], r
        lightweight = req({"op": "get", "project": "ci", "artifact": "lightweight"})["text"]
        rewritten = req({"op": "get", "project": "ci", "artifact": "source:main.cpp"})["text"]

        # Crash: no shutdown handshake, no flush — only the cache dir survives.
        gen1.kill()
        gen1.wait(timeout=30)

        gen2 = subprocess.Popen(
            [BINARY, "serve", "--socket", sock2, "--cache-dir", cache_dir, "--workers", "2"]
        )
        req = connect(sock2)
        # The pool rebuild races with the first client connection, so
        # poll rather than assert on the very first `status` response.
        r = poll_status(
            req,
            lambda r: len(r["shards"]) == 1,
            "the restarted daemon to rebuild its pool from disk",
        )
        assert r["shards"][0]["project"] == "ci", r
        r = req({"op": "rerun", "project": "ci"})
        assert r["ok"] and r["fully_cached"], (
            "first rerun after crash restart was not disk-warm: %r" % r
        )
        r = req({"op": "get", "project": "ci", "artifact": "lightweight"})
        assert r["ok"] and r["text"] == lightweight, "lightweight header changed across crash"
        r = req({"op": "get", "project": "ci", "artifact": "source:main.cpp"})
        assert r["ok"] and r["text"] == rewritten, "rewritten source changed across crash"
        r = req({"op": "shutdown"})
        assert r["ok"], r
        assert gen2.wait(timeout=30) == 0, "restarted daemon did not exit cleanly"
    finally:
        for d in (gen1, gen2):
            if d is not None and d.poll() is None:
                d.kill()
        shutil.rmtree(cache_dir, ignore_errors=True)
    print("serve kill-and-restart OK")


def main():
    basic_cycle()
    kill_and_restart()


if __name__ == "__main__":
    sys.exit(main())
